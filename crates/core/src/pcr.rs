//! Distributed parallel (block) cyclic reduction — the BCYCLIC-style
//! comparator (extension; the paper's related-work family).
//!
//! Parallel cyclic reduction keeps **every** row active: at level `l`
//! (stride `s = 2^l`), each row `i` eliminates its couplings to rows
//! `i - s` and `i + s`:
//!
//! ```text
//! alpha_i = -A_i B_{i-s}^{-1}        gamma_i = -C_i B_{i+s}^{-1}
//! A'_i = alpha_i A_{i-s}             C'_i = gamma_i C_{i+s}
//! B'_i = B_i + alpha_i C_{i-s} + gamma_i A_{i+s}
//! y'_i = y_i + alpha_i y_{i-s} + gamma_i y_{i+s}
//! ```
//!
//! After `ceil(log2 N)` levels every coupling leaves `[0, N)` and each
//! row solves independently: `x_i = B_i^{-1} y_i`. No prefix products
//! ever form, so there is **no conditioning envelope** — PCR is as
//! robust as the sequential eliminations it is built from.
//!
//! Like the accelerated recursive doubling algorithm, all matrix work is
//! right-hand-side independent. [`PcrRankFactors::setup`] stores the
//! per-level elimination coefficients (`alpha`, `gamma`) and the final
//! diagonal factorizations; each [`PcrRankFactors::solve`] then only
//! updates right-hand-side panels. The costs tell the trade-off story
//! (Figure A6):
//!
//! |  | setup flops | per-solve flops | per-solve words |
//! |---|---|---|---|
//! | accelerated RD | `O(M^3 (N/P + log P))` | `O(M^2 R (N/P + log P))` | `O(M R log P)` |
//! | amortized PCR | `O(M^3 (N/P) log N)` | `O(M^2 R (N/P) log N)` | `O(M R (N/P) log N)` |
//!
//! PCR pays a `log N` multiplier on *everything* — the price of its
//! robustness.

use bt_blocktri::{FactorError, RowPartition};
use bt_comm::CommBackend;
use bt_dense::{gemm, gemm_flops, lu_flops, lu_solve_flops, LuFactors, Mat, Trans};

use crate::state::RankSystem;

/// Tag bases for the per-level halo exchanges.
mod tags {
    /// Setup rows: `base + 2 * level + direction`.
    pub const SETUP: u64 = 600;
    /// Solve panels: same layout.
    pub const SOLVE: u64 = 760;
}

/// A row's coefficients during elimination.
#[derive(Debug, Clone)]
struct RowCoef {
    a: Mat,
    b: Mat,
    c: Mat,
}

/// Per-level, per-local-row elimination coefficients (None where the
/// partner row is outside the domain).
type LevelCoef = Vec<(Option<Mat>, Option<Mat>)>;

/// Per-peer row index lists: `(peer rank, global rows)`.
type PeerRows = Vec<(usize, Vec<usize>)>;

/// Matrix-dependent PCR state: per-level `alpha`/`gamma` plus the final
/// block-diagonal factorizations.
#[derive(Debug)]
pub struct PcrRankFactors {
    /// Global rows.
    pub n: usize,
    /// Block order.
    pub m: usize,
    /// First owned row.
    pub lo: usize,
    /// One past the last owned row.
    pub hi: usize,
    part: RowPartition,
    levels: Vec<LevelCoef>,
    final_lu: Vec<LuFactors>,
}

/// Which remote rows rank `rank` must receive at stride `s`, and to whom
/// each of its own rows must be sent. Pure function of the partition.
fn halo_plan(part: &RowPartition, rank: usize, s: usize) -> (PeerRows, PeerRows) {
    let n = part.n();
    let range = part.range(rank);
    let (lo, hi) = (range.start, range.end);

    // Needs: for each owned i, rows i-s and i+s (if in-domain, not owned).
    let mut needs: PeerRows = Vec::new();
    let push = |owner: usize, row: usize, list: &mut PeerRows| {
        if let Some(entry) = list.iter_mut().find(|(o, _)| *o == owner) {
            entry.1.push(row);
        } else {
            list.push((owner, vec![row]));
        }
    };
    for i in lo..hi {
        if i >= s {
            let j = i - s;
            if !(lo..hi).contains(&j) {
                push(part.owner(j), j, &mut needs);
            }
        }
        if i + s < n {
            let j = i + s;
            if !(lo..hi).contains(&j) {
                push(part.owner(j), j, &mut needs);
            }
        }
    }
    // Gives: my row j is needed by owner(j + s) (as their i - s) and
    // owner(j - s) (as their i + s).
    let mut gives: PeerRows = Vec::new();
    for j in lo..hi {
        if j + s < n {
            let q = part.owner(j + s);
            if q != rank {
                push(q, j, &mut gives);
            }
        }
        if j >= s {
            let q = part.owner(j - s);
            if q != rank {
                push(q, j, &mut gives);
            }
        }
    }
    // Dedup row lists (a row can be needed twice by the same peer only
    // via distinct directions, which cannot happen for fixed s, but keep
    // the invariant explicit).
    for (_, rows) in needs.iter_mut().chain(gives.iter_mut()) {
        rows.sort_unstable();
        rows.dedup();
    }
    needs.sort_unstable_by_key(|(o, _)| *o);
    gives.sort_unstable_by_key(|(o, _)| *o);
    (needs, gives)
}

impl PcrRankFactors {
    /// Collective setup: runs the `ceil(log2 N)` elimination levels on
    /// the matrix coefficients, storing `alpha`/`gamma` per level and the
    /// final diagonal LU factors.
    ///
    /// # Errors
    ///
    /// [`FactorError`] (coordinated across ranks) if a diagonal block is
    /// singular at some level.
    pub fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        let n = sys.n;
        let m = sys.m;
        let nl = sys.local_len();
        let part = RowPartition::new(n, comm.size());

        let mut rows: Vec<RowCoef> = sys
            .rows
            .iter()
            .map(|r| RowCoef {
                a: r.a.clone(),
                b: r.b.clone(),
                c: r.c.clone(),
            })
            .collect();
        let mut levels: Vec<LevelCoef> = Vec::new();

        let mut s = 1usize;
        let mut level_idx = 0u64;
        let mut pending_err: Option<FactorError> = None;
        while s < n {
            // ---- Halo exchange of current (A, B, C) rows: the stencil
            // is symmetric (I need rows from exactly the peers that need
            // mine, row-for-row), so each peer is one paired
            // `exchange_panel` of row-stacked `count*M x 3M` panels
            // `[A | B | C]`. Sorted peer order on both sides plus
            // eager-buffered sends make the pairing deadlock-free.
            let (needs, gives) = halo_plan(&part, comm.rank(), s);
            let tag = tags::SETUP + 2 * level_idx;
            debug_assert_eq!(needs.len(), gives.len());
            let mut remote: Vec<(usize, RowCoef)> = Vec::new();
            for ((src, need_rows), (dst, give_rows)) in needs.iter().zip(&gives) {
                debug_assert_eq!(src, dst);
                debug_assert_eq!(need_rows.len(), give_rows.len());
                let mut sbuf = Mat::zeros(give_rows.len() * m, 3 * m);
                for (t, &j) in give_rows.iter().enumerate() {
                    let r = &rows[j - sys.lo];
                    sbuf.set_block(t * m, 0, &r.a);
                    sbuf.set_block(t * m, m, &r.b);
                    sbuf.set_block(t * m, 2 * m, &r.c);
                }
                let mut rbuf = Mat::zeros(need_rows.len() * m, 3 * m);
                comm.exchange_panel(
                    tag,
                    Some((*dst, sbuf.as_ref())),
                    Some((*src, rbuf.as_mut())),
                );
                for (t, &j) in need_rows.iter().enumerate() {
                    remote.push((
                        j,
                        RowCoef {
                            a: rbuf.block(t * m, 0, m, m),
                            b: rbuf.block(t * m, m, m, m),
                            c: rbuf.block(t * m, 2 * m, m, m),
                        },
                    ));
                }
            }
            let fetch = |j: usize| -> &RowCoef {
                if (sys.lo..sys.hi).contains(&j) {
                    &rows[j - sys.lo]
                } else {
                    &remote
                        .iter()
                        .find(|(jj, _)| *jj == j)
                        .expect("halo row present")
                        .1
                }
            };

            // ---- Elimination (simultaneous update on old values). ----
            let mut coef: LevelCoef = Vec::with_capacity(nl);
            let mut new_rows: Vec<RowCoef> = Vec::with_capacity(nl);
            for (k, me) in rows.iter().enumerate() {
                if pending_err.is_some() {
                    // Keep participating in communication shapes; skip math.
                    coef.push((None, None));
                    new_rows.push(me.clone());
                    continue;
                }
                let i = sys.lo + k;
                let mut new = me.clone();

                let alpha = if i >= s {
                    let left = fetch(i - s);
                    match LuFactors::factor(&left.b) {
                        Ok(lu) => {
                            comm.compute(lu_flops(m));
                            let mut al = lu.solve_transposed_system(&me.a);
                            al.negate();
                            comm.compute(lu_solve_flops(m, m));
                            // A' = alpha A_{i-s}; B' += alpha C_{i-s}
                            let mut na = Mat::zeros(m, m);
                            gemm(1.0, &al, Trans::No, &left.a, Trans::No, 0.0, &mut na);
                            gemm(1.0, &al, Trans::No, &left.c, Trans::No, 1.0, &mut new.b);
                            comm.compute(2 * gemm_flops(m, m, m));
                            new.a = na;
                            Some(al)
                        }
                        Err(source) => {
                            pending_err = Some(FactorError { row: i - s, source });
                            None
                        }
                    }
                } else {
                    new.a = Mat::zeros(m, m);
                    None
                };
                let gamma = if i + s < n && pending_err.is_none() {
                    let right = fetch(i + s);
                    match LuFactors::factor(&right.b) {
                        Ok(lu) => {
                            comm.compute(lu_flops(m));
                            let mut ga = lu.solve_transposed_system(&me.c);
                            ga.negate();
                            comm.compute(lu_solve_flops(m, m));
                            let mut nc = Mat::zeros(m, m);
                            gemm(1.0, &ga, Trans::No, &right.c, Trans::No, 0.0, &mut nc);
                            gemm(1.0, &ga, Trans::No, &right.a, Trans::No, 1.0, &mut new.b);
                            comm.compute(2 * gemm_flops(m, m, m));
                            new.c = nc;
                            Some(ga)
                        }
                        Err(source) => {
                            pending_err = Some(FactorError { row: i + s, source });
                            None
                        }
                    }
                } else {
                    if i + s >= n {
                        new.c = Mat::zeros(m, m);
                    }
                    None
                };

                coef.push((alpha, gamma));
                new_rows.push(new);
            }
            rows = new_rows;
            levels.push(coef);
            s <<= 1;
            level_idx += 1;
        }

        // ---- Final diagonal factorizations + error coordination. ----
        let final_lu: Result<Vec<LuFactors>, FactorError> = match &pending_err {
            Some(e) => Err(e.clone()),
            None => rows
                .iter()
                .enumerate()
                .map(|(k, r)| {
                    let lu = LuFactors::factor(&r.b).map_err(|source| FactorError {
                        row: sys.lo + k,
                        source,
                    })?;
                    comm.compute(lu_flops(m));
                    Ok(lu)
                })
                .collect(),
        };
        let my_err = match &final_lu {
            Ok(_) => u64::MAX,
            Err(e) => e.row as u64,
        };
        let first_err = comm.allreduce(my_err, |a, b| (*a).min(*b));
        if first_err != u64::MAX {
            return Err(match final_lu {
                Err(e) if e.row as u64 == first_err => e,
                _ => FactorError {
                    row: first_err as usize,
                    source: bt_dense::SingularError {
                        step: 0,
                        pivot: 0.0,
                    },
                },
            });
        }

        Ok(Self {
            n,
            m,
            lo: sys.lo,
            hi: sys.hi,
            part,
            levels,
            final_lu: final_lu.expect("checked above"),
        })
    }

    /// Number of owned rows.
    pub fn local_len(&self) -> usize {
        self.hi - self.lo
    }

    /// Number of elimination levels (`ceil(log2 N)`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Bytes of stored factors on this rank.
    pub fn storage_bytes(&self) -> u64 {
        let mat_bytes = (self.m * self.m * 8) as u64;
        let coef: u64 = self
            .levels
            .iter()
            .flatten()
            .map(|(a, g)| (a.is_some() as u64 + g.is_some() as u64) * mat_bytes)
            .sum();
        coef + self.local_len() as u64 * mat_bytes
    }

    /// Solves one right-hand-side batch (collective): per level, a halo
    /// exchange of `M x R` panels and two GEMM updates per row; then the
    /// independent diagonal solves.
    ///
    /// # Panics
    ///
    /// Panics on panel shape mismatch.
    pub fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat> {
        let nl = self.local_len();
        let m = self.m;
        assert_eq!(y_local.len(), nl, "rhs panel count mismatch");
        let r = y_local[0].cols();
        let mut y: Vec<Mat> = y_local.to_vec();

        let mut s = 1usize;
        for (level_idx, coef) in self.levels.iter().enumerate() {
            // Same symmetric paired exchange as setup, with row-stacked
            // `count*M x R` right-hand-side panels.
            let (needs, gives) = halo_plan(&self.part, comm.rank(), s);
            let tag = tags::SOLVE + 2 * level_idx as u64;
            debug_assert_eq!(needs.len(), gives.len());
            let mut remote: Vec<(usize, Mat)> = Vec::new();
            for ((src, need_rows), (dst, give_rows)) in needs.iter().zip(&gives) {
                debug_assert_eq!(src, dst);
                let mut sbuf = Mat::zeros(give_rows.len() * m, r);
                for (t, &j) in give_rows.iter().enumerate() {
                    sbuf.set_block(t * m, 0, &y[j - self.lo]);
                }
                let mut rbuf = Mat::zeros(need_rows.len() * m, r);
                comm.exchange_panel(
                    tag,
                    Some((*dst, sbuf.as_ref())),
                    Some((*src, rbuf.as_mut())),
                );
                for (t, &j) in need_rows.iter().enumerate() {
                    remote.push((j, rbuf.block(t * m, 0, m, r)));
                }
            }
            let fetch = |j: usize| -> &Mat {
                if (self.lo..self.hi).contains(&j) {
                    &y[j - self.lo]
                } else {
                    &remote
                        .iter()
                        .find(|(jj, _)| *jj == j)
                        .expect("halo panel present")
                        .1
                }
            };

            let mut new_y: Vec<Mat> = Vec::with_capacity(nl);
            for (k, (alpha, gamma)) in coef.iter().enumerate() {
                let i = self.lo + k;
                let mut v = y[k].clone();
                if let Some(al) = alpha {
                    gemm(1.0, al, Trans::No, fetch(i - s), Trans::No, 1.0, &mut v);
                    comm.compute(gemm_flops(m, m, r));
                }
                if let Some(ga) = gamma {
                    gemm(1.0, ga, Trans::No, fetch(i + s), Trans::No, 1.0, &mut v);
                    comm.compute(gemm_flops(m, m, r));
                }
                new_y.push(v);
            }
            y = new_y;
            s <<= 1;
        }

        // Decoupled: x_i = B_i^{-1} y_i.
        y.iter()
            .zip(&self.final_lu)
            .map(|(v, lu)| {
                let x = lu.solve(v);
                comm.compute(lu_solve_flops(m, r));
                x
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{
        materialize, random_rhs, ClusteredToeplitz, ConvectionDiffusion, Poisson2D, RandomDominant,
    };
    use bt_blocktri::thomas::thomas_solve;
    use bt_blocktri::{BlockRowSource, BlockVec};
    use bt_mpsim::{run_spmd, CostModel};

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    fn pcr_solve_global(src: &(impl BlockRowSource + Sync), p: usize, y: &BlockVec) -> BlockVec {
        let n = src.n();
        let m = src.m();
        let part = RowPartition::new(n, p);
        let out = run_spmd(p, ZERO, |comm| {
            let sys = RankSystem::from_source(src, p, comm.rank());
            let factors = PcrRankFactors::setup(comm, &sys).expect("setup");
            let y_local: Vec<Mat> = part
                .range(comm.rank())
                .map(|i| y.blocks[i].clone())
                .collect();
            (sys.lo, factors.solve(comm, &y_local))
        });
        let mut x = BlockVec::zeros(n, m, y.r());
        for (lo, panels) in out.results {
            for (k, panel) in panels.into_iter().enumerate() {
                x.blocks[lo + k] = panel;
            }
        }
        x
    }

    #[test]
    fn halo_plan_is_consistent() {
        // Every (src -> dst, row) in one rank's `gives` appears in the
        // destination's `needs` and vice versa.
        for (n, p, s) in [(16, 4, 1), (16, 4, 2), (16, 4, 8), (23, 5, 4), (9, 3, 2)] {
            let part = RowPartition::new(n, p);
            for rank in 0..p {
                let (needs, gives) = halo_plan(&part, rank, s);
                for (src, rows) in &needs {
                    let (_, peer_gives) = halo_plan(&part, *src, s);
                    let to_me = peer_gives
                        .iter()
                        .find(|(d, _)| *d == rank)
                        .map(|(_, r)| r.clone())
                        .unwrap_or_default();
                    assert_eq!(&to_me, rows, "n={n} p={p} s={s} {src}->{rank}");
                }
                for (dst, rows) in &gives {
                    let (peer_needs, _) = halo_plan(&part, *dst, s);
                    let from_me = peer_needs
                        .iter()
                        .find(|(o, _)| *o == rank)
                        .map(|(_, r)| r.clone())
                        .unwrap_or_default();
                    assert_eq!(&from_me, rows, "n={n} p={p} s={s} {rank}->{dst}");
                }
            }
        }
    }

    #[test]
    fn matches_thomas_on_clustered() {
        let src = ClusteredToeplitz::standard(48, 4, 3);
        let t = materialize(&src);
        let y = random_rhs(48, 4, 3, 5);
        let x_th = thomas_solve(&t, &y).unwrap();
        for p in [1, 2, 3, 4, 8] {
            let x = pcr_solve_global(&src, p, &y);
            assert!(x.rel_diff(&x_th) < 1e-10, "p={p}: {}", x.rel_diff(&x_th));
        }
    }

    #[test]
    fn stable_on_large_poisson() {
        // Where the exact-scan prefix method breaks down, PCR is fine.
        let src = Poisson2D::new(300, 6);
        let t = materialize(&src);
        let y = random_rhs(300, 6, 2, 1);
        let x = pcr_solve_global(&src, 8, &y);
        let res = t.rel_residual(&x, &y);
        assert!(res < 1e-11, "residual {res}");
    }

    #[test]
    fn stable_on_wide_spectrum_generators() {
        for p in [4, 7] {
            let src = RandomDominant::new(120, 4, 1.5, 7);
            let t = materialize(&src);
            let y = random_rhs(120, 4, 2, 2);
            let x = pcr_solve_global(&src, p, &y);
            assert!(t.rel_residual(&x, &y) < 1e-11, "p={p}");

            let src = ConvectionDiffusion::new(100, 4, 0.6);
            let t = materialize(&src);
            let y = random_rhs(100, 4, 2, 3);
            let x = pcr_solve_global(&src, p, &y);
            assert!(t.rel_residual(&x, &y) < 1e-11, "p={p}");
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        for n in [5, 13, 37, 61] {
            let src = ClusteredToeplitz::standard(n, 3, n as u64);
            let t = materialize(&src);
            let y = random_rhs(n, 3, 2, 9);
            let x = pcr_solve_global(&src, 3.min(n), &y);
            assert!(t.rel_residual(&x, &y) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn setup_once_solve_many_amortizes() {
        // R = 1 << M = 8 so the O(M^3) setup clearly dominates the
        // O(M^2 R) solves.
        let src = ClusteredToeplitz::standard(64, 8, 1);
        let t = materialize(&src);
        let p = 4;
        let part = RowPartition::new(64, p);
        let ys: Vec<BlockVec> = (0..3).map(|sd| random_rhs(64, 8, 1, sd)).collect();
        let ys_ref = &ys;
        let out = run_spmd(p, ZERO, |comm| {
            let sys = RankSystem::from_source(&src, p, comm.rank());
            let before_setup = comm.stats().flops;
            let factors = PcrRankFactors::setup(comm, &sys).expect("setup");
            let setup_flops = comm.stats().flops - before_setup;
            let mut results = Vec::new();
            let before_solves = comm.stats().flops;
            for y in ys_ref {
                let y_local: Vec<Mat> = part
                    .range(comm.rank())
                    .map(|i| y.blocks[i].clone())
                    .collect();
                results.push((sys.lo, factors.solve(comm, &y_local)));
            }
            let solve_flops = comm.stats().flops - before_solves;
            assert!(factors.storage_bytes() > 0);
            assert!(factors.level_count() == 6); // log2(64)
            (results, setup_flops, solve_flops)
        });
        for (b, y) in ys.iter().enumerate() {
            let mut x = BlockVec::zeros(64, 8, 1);
            for (results, _, _) in &out.results {
                let (lo, panels) = &results[b];
                for (k, panel) in panels.iter().enumerate() {
                    x.blocks[lo + k] = panel.clone();
                }
            }
            assert!(t.rel_residual(&x, y) < 1e-11, "batch {b}");
        }
        // Matrix work dominates: 3 solves together cost far less than setup.
        for (_, setup_flops, solve_flops) in &out.results {
            assert!(
                solve_flops * 2 < *setup_flops,
                "setup {setup_flops} solve {solve_flops}"
            );
        }
    }

    #[test]
    fn singular_level_diagonal_reported() {
        use bt_blocktri::BlockRow;
        // B_1 = 0: the level-0 elimination hits a singular diagonal.
        struct Bad;
        impl BlockRowSource for Bad {
            fn n(&self) -> usize {
                4
            }
            fn m(&self) -> usize {
                2
            }
            fn row(&self, i: usize) -> BlockRow {
                let z = Mat::zeros(2, 2);
                let b = if i == 1 {
                    Mat::zeros(2, 2)
                } else {
                    Mat::from_diag(&[6.0, 6.0])
                };
                let a = if i == 0 {
                    z.clone()
                } else {
                    Mat::identity(2).scaled(-1.0)
                };
                let c = if i == 3 {
                    z
                } else {
                    Mat::identity(2).scaled(-1.0)
                };
                BlockRow::new(a, b, c)
            }
        }
        let out = run_spmd(2, ZERO, |comm| {
            let sys = RankSystem::from_source(&Bad, 2, comm.rank());
            PcrRankFactors::setup(comm, &sys).err().map(|e| e.row)
        });
        for e in out.results {
            assert_eq!(e, Some(1));
        }
    }
}
