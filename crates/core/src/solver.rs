//! The [`RankSolver`] abstraction: one interface over every
//! setup/solve-split parallel solver in the suite, and a generic
//! [`Session`] that keeps any of them alive across solve calls.
//!
//! Three solvers share the "factor once, replay per right-hand side"
//! structure with very different internals:
//!
//! * [`ArdRankFactors`] — the paper's accelerated recursive doubling;
//! * [`SpikeRankFactors`] — SPIKE partitioning with a gathered reduced
//!   system;
//! * [`PcrRankFactors`] — amortized parallel cyclic reduction.
//!
//! `Session<S>` generalizes [`crate::session::ArdSession`]: pick the
//! solver by type parameter, keep the `ArdSession` type when you need
//! ARD-specific extras (boundary modes, lean replay, refinement).

use bt_blocktri::{BlockRowSource, BlockVec, FactorError, RowPartition};
use bt_comm::{CommBackend, CostModel};
use bt_dense::Mat;
use bt_mpsim::run_spmd;
use parking_lot::Mutex;

use crate::pcr::PcrRankFactors;
use crate::spike::SpikeRankFactors;
use crate::state::{ArdRankFactors, RankSystem};

/// A distributed solver with right-hand-side-independent setup.
///
/// Both methods are collective: every rank of the world must call them
/// together, in the same order.
pub trait RankSolver: Send + Sized + 'static {
    /// Human-readable solver name (for reports).
    const NAME: &'static str;

    /// Builds the matrix-dependent state for this rank's slice.
    ///
    /// # Errors
    ///
    /// [`FactorError`], agreed upon by every rank, when the matrix
    /// violates the solver's requirements.
    fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError>;

    /// Solves one batch of local right-hand-side panels.
    fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat>;

    /// Bytes of factor state stored on this rank.
    fn storage_bytes(&self) -> u64;
}

impl RankSolver for ArdRankFactors {
    const NAME: &'static str = "accelerated-recursive-doubling";

    fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        ArdRankFactors::setup(comm, sys, true)
    }

    fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat> {
        self.solve_replay(comm, y_local)
    }

    fn storage_bytes(&self) -> u64 {
        ArdRankFactors::storage_bytes(self)
    }
}

impl RankSolver for SpikeRankFactors {
    const NAME: &'static str = "spike-partitioned";

    fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        SpikeRankFactors::setup(comm, sys)
    }

    fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat> {
        SpikeRankFactors::solve(self, comm, y_local)
    }

    fn storage_bytes(&self) -> u64 {
        SpikeRankFactors::storage_bytes(self)
    }
}

impl RankSolver for PcrRankFactors {
    const NAME: &'static str = "parallel-cyclic-reduction";

    fn setup<C: CommBackend>(comm: &mut C, sys: &RankSystem) -> Result<Self, FactorError> {
        PcrRankFactors::setup(comm, sys)
    }

    fn solve<C: CommBackend>(&self, comm: &mut C, y_local: &[Mat]) -> Vec<Mat> {
        PcrRankFactors::solve(self, comm, y_local)
    }

    fn storage_bytes(&self) -> u64 {
        PcrRankFactors::storage_bytes(self)
    }
}

/// A persistent session over any [`RankSolver`]: factor once with
/// [`Session::create`], then [`Session::solve`] arbitrary batches later.
pub struct Session<S: RankSolver> {
    p: usize,
    n: usize,
    m: usize,
    model: CostModel,
    part: RowPartition,
    state: Mutex<Vec<S>>,
}

impl<S: RankSolver> Session<S> {
    /// Runs the collective setup on `p` ranks and captures the factors.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if setup breaks down.
    ///
    /// # Panics
    ///
    /// Panics if `src.n() < p`.
    pub fn create<Src: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        src: &Src,
    ) -> Result<Self, FactorError> {
        let n = src.n();
        let m = src.m();
        assert!(
            n >= p,
            "need at least one block row per rank (N={n}, P={p})"
        );
        let out = run_spmd(p, model, |comm| -> Result<S, FactorError> {
            let sys = RankSystem::from_source(src, p, comm.rank());
            S::setup(comm, &sys)
        });
        let state: Vec<S> = out.results.into_iter().collect::<Result<_, _>>()?;
        Ok(Self {
            p,
            n,
            m,
            model,
            part: RowPartition::new(n, p),
            state: Mutex::new(state),
        })
    }

    /// Solver name.
    pub fn solver_name(&self) -> &'static str {
        S::NAME
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Total stored factor bytes across ranks.
    pub fn factor_bytes(&self) -> u64 {
        self.state.lock().iter().map(S::storage_bytes).sum()
    }

    /// Solves one batch with the stored factors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn solve(&self, y: &BlockVec) -> BlockVec {
        assert_eq!(y.n(), self.n, "rhs block count mismatch");
        assert_eq!(y.m(), self.m, "rhs block order mismatch");
        let mut guard = self.state.lock();
        let state = std::mem::take(&mut *guard);
        let slots: Vec<Mutex<Option<S>>> = state.into_iter().map(|s| Mutex::new(Some(s))).collect();

        let part = &self.part;
        let out = run_spmd(self.p, self.model, |comm| {
            let factors = slots[comm.rank()].lock().take().expect("state present");
            let y_local: Vec<Mat> = part
                .range(comm.rank())
                .map(|i| y.blocks[i].clone())
                .collect();
            let x = factors.solve(comm, &y_local);
            *slots[comm.rank()].lock() = Some(factors);
            x
        });
        *guard = slots
            .into_iter()
            .map(|s| s.into_inner().expect("state returned"))
            .collect();

        let mut x = BlockVec::zeros(self.n, self.m, y.r());
        for (rank, panels) in out.results.into_iter().enumerate() {
            let lo = self.part.range(rank).start;
            for (k, panel) in panels.into_iter().enumerate() {
                x.blocks[lo + k] = panel;
            }
        }
        x
    }
}

/// Session over the accelerated recursive doubling solver (exact scan).
/// For boundary modes / lean replay / refinement, use
/// [`crate::session::ArdSession`].
pub type ArdGenericSession = Session<ArdRankFactors>;
/// Session over the SPIKE partitioned solver.
pub type SpikeSession = Session<SpikeRankFactors>;
/// Session over amortized parallel cyclic reduction.
pub type PcrSession = Session<PcrRankFactors>;

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    #[test]
    fn all_three_sessions_agree() {
        let src = ClusteredToeplitz::standard(48, 4, 5);
        let t = materialize(&src);
        let y = random_rhs(48, 4, 3, 2);

        let ard = ArdGenericSession::create(4, ZERO, &src).unwrap();
        let spike = SpikeSession::create(4, ZERO, &src).unwrap();
        let pcr = PcrSession::create(4, ZERO, &src).unwrap();
        assert_eq!(ard.solver_name(), "accelerated-recursive-doubling");
        assert_eq!(spike.solver_name(), "spike-partitioned");
        assert_eq!(pcr.solver_name(), "parallel-cyclic-reduction");

        let xa = ard.solve(&y);
        let xs = spike.solve(&y);
        let xp = pcr.solve(&y);
        assert!(t.rel_residual(&xa, &y) < 1e-11);
        assert!(xs.rel_diff(&xa) < 1e-10);
        assert!(xp.rel_diff(&xa) < 1e-10);
    }

    #[test]
    fn pcr_session_on_wide_spectrum() {
        // PCR sessions work where ARD's exact scan cannot.
        let src = Poisson2D::new(200, 5);
        let t = materialize(&src);
        let session = PcrSession::create(4, ZERO, &src).unwrap();
        for seed in 0..3 {
            let y = random_rhs(200, 5, 2, seed);
            let x = session.solve(&y);
            assert!(t.rel_residual(&x, &y) < 1e-11, "seed {seed}");
        }
        assert!(session.factor_bytes() > 0);
        assert_eq!(session.ranks(), 4);
    }

    #[test]
    fn session_reuse_is_cheap() {
        // The second solve must not redo matrix work: time it via flops
        // by comparing against a fresh create+solve.
        let src = ClusteredToeplitz::standard(64, 6, 1);
        let session = SpikeSession::create(4, ZERO, &src).unwrap();
        let y = random_rhs(64, 6, 2, 3);
        let x1 = session.solve(&y);
        let x2 = session.solve(&y);
        assert_eq!(x1, x2, "same batch, same factors, same answer");
    }
}
