//! Cross-rank recursive-doubling (Kogge-Stone) scans.
//!
//! These are the `log P` communication rounds of the algorithm. Three
//! variants share the same message pattern:
//!
//! * [`companion_exscan`] — Phase 1: exclusive scan of companion-matrix
//!   products (`2M x 2M` payloads, matrix-matrix combines);
//! * [`affine_exscan_fresh`] — Phases 2/3 of *classic* recursive
//!   doubling: full affine pairs travel (`M^2 + M R` words per step) and
//!   each combine pays the `O(M^3)` matrix product. Optionally records
//!   the accumulator matrices into a [`ScanTrace`];
//! * [`affine_exscan_replay`] — Phases 2/3 of the *accelerated*
//!   algorithm: only the `M x R` vector panels travel and each combine is
//!   the `O(M^2 R)` matrix-panel product against the recorded trace.
//!
//! The fresh-vs-replay split is the entire acceleration: per solve, both
//! the per-step payload and the per-step work drop by a factor of `M/R`
//! on the matrix side.
//!
//! Scans support both directions; the *backward* scan (Phase 3) runs the
//! identical algorithm on reversed logical ranks.

use bt_dense::{gemm, Mat, Trans, Workspace};
use bt_mpsim::Comm;

use crate::companion::CompanionProduct;
use crate::pairs::AffinePair;

/// Scan direction: which physical rank is "logically first".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Logical order equals rank order (row 0 lives on the logical first
    /// rank). Used by the forward substitution scan.
    Forward,
    /// Logical order is reversed (row `N-1` lives on the logical first
    /// rank). Used by the backward substitution scan.
    Backward,
}

impl Direction {
    /// Logical index of `rank` in a world of `p`.
    #[inline]
    pub fn logical(self, rank: usize, p: usize) -> usize {
        match self {
            Direction::Forward => rank,
            Direction::Backward => p - 1 - rank,
        }
    }

    /// Physical rank of `logical` index in a world of `p`.
    #[inline]
    pub fn physical(self, logical: usize, p: usize) -> usize {
        // The mapping is an involution.
        self.logical(logical, p)
    }
}

/// Recorded accumulator matrices from a fresh scan, enabling replays.
///
/// `mats[k]` is the accumulator's matrix component *before* the `k`-th
/// receive-combine of the scan (in receive order). These depend only on
/// the coefficient matrix, never on right-hand sides.
#[derive(Debug, Clone, Default)]
pub struct ScanTrace {
    /// Pre-combine accumulator matrices, one per receive event.
    pub mats: Vec<Mat>,
}

impl ScanTrace {
    /// Bytes of storage held by the trace.
    pub fn storage_bytes(&self) -> u64 {
        let elem = std::mem::size_of::<f64>() as u64;
        self.mats
            .iter()
            .map(|m| (m.rows() * m.cols()) as u64 * elem)
            .sum()
    }
}

/// Exclusive scan of companion products across ranks.
///
/// Rank `r` contributes the product of its local `W` matrices; the result
/// on rank `r` is the product of all contributions of ranks `< r`
/// (`None` on rank 0, meaning identity). Combines are performed in rank
/// order (matrix products do not commute).
pub fn companion_exscan(
    comm: &mut Comm,
    tag_base: u64,
    total: CompanionProduct,
) -> Option<CompanionProduct> {
    let p = comm.size();
    let me = comm.rank();
    let m = total.m();
    let mut acc = total;
    let mut dist = 1usize;
    let mut step = 0u64;
    while dist < p {
        let _round = bt_obs::span_with("scan", "companion_exscan.round", || {
            format!("{{\"step\":{step},\"dist\":{dist}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            comm.send(me + dist, tag, (acc.top.clone(), acc.bot.clone()));
        }
        if me >= dist {
            let (top, bot): (Mat, Mat) = comm.recv(me - dist, tag);
            let earlier = CompanionProduct { top, bot };
            // `earlier` covers lower-ranked W's: acc = acc * earlier.
            acc = earlier.compose_after(&acc);
            comm.compute(CompanionProduct::compose_flops(m));
        }
        dist <<= 1;
        step += 1;
    }
    // Shift the inclusive result right by one rank to make it exclusive.
    let tag = tag_base + step;
    if me + 1 < p {
        comm.send(me + 1, tag, (acc.top, acc.bot));
    }
    if me > 0 {
        let (top, bot): (Mat, Mat) = comm.recv(me - 1, tag);
        Some(CompanionProduct { top, bot })
    } else {
        None
    }
}

/// Exclusive affine scan with full pairs (classic recursive doubling).
///
/// `total` is this rank's composition of its local affine pairs (in row
/// order along `dir`). Returns the *vector component* of the exclusive
/// composition — the only part the per-row fixup needs — or `None` on the
/// logically first rank. If `record` is given, the accumulator matrices
/// are pushed for later [`affine_exscan_replay`] calls.
pub fn affine_exscan_fresh(
    comm: &mut Comm,
    dir: Direction,
    tag_base: u64,
    total: AffinePair,
    mut record: Option<&mut ScanTrace>,
) -> Option<Mat> {
    let p = comm.size();
    let me = dir.logical(comm.rank(), p);
    let m = total.m();
    let r = total.r();
    let mut acc = total;
    let mut dist = 1usize;
    let mut step = 0u64;
    while dist < p {
        let _round = bt_obs::span_with("scan", "affine_fresh.round", || {
            format!("{{\"step\":{step},\"dist\":{dist}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            comm.send(
                dir.physical(me + dist, p),
                tag,
                (acc.mat.clone(), acc.vec.clone()),
            );
        }
        if me >= dist {
            let (mat, vec): (Mat, Mat) = comm.recv(dir.physical(me - dist, p), tag);
            if let Some(trace) = record.as_deref_mut() {
                trace.mats.push(acc.mat.clone());
            }
            acc = AffinePair::compose(&acc, &AffinePair { mat, vec });
            comm.compute(AffinePair::compose_flops(m, r));
        }
        dist <<= 1;
        step += 1;
    }
    let tag = tag_base + step;
    if me + 1 < p {
        comm.send(dir.physical(me + 1, p), tag, acc.vec);
    }
    if me > 0 {
        Some(comm.recv(dir.physical(me - 1, p), tag))
    } else {
        None
    }
}

/// Exclusive affine scan replaying a recorded trace (accelerated path).
///
/// `total_vec` is the vector component of this rank's local composition
/// for the current right-hand-side batch; `trace` must come from an
/// [`affine_exscan_fresh`] run on the same world size, direction, and
/// coefficient matrix. Only `M x R` panels travel; combines cost
/// `O(M^2 R)`.
///
/// This is the per-solve hot path, so every temporary comes from `ws`
/// and messages travel as pooled [`bt_mpsim::PanelBuf`]s: once `ws` and
/// the panel pool are warm, a replay performs zero heap allocations.
pub fn affine_exscan_replay(
    comm: &mut Comm,
    dir: Direction,
    tag_base: u64,
    total_vec: Mat,
    trace: &ScanTrace,
    ws: &mut Workspace,
) -> Option<Mat> {
    let p = comm.size();
    let me = dir.logical(comm.rank(), p);
    let m = total_vec.rows();
    let r = total_vec.cols();
    let mut v_acc = total_vec;
    let mut dist = 1usize;
    let mut step = 0u64;
    let mut combine_idx = 0usize;
    while dist < p {
        let _round = bt_obs::span_with("scan", "affine_replay.round", || {
            format!("{{\"step\":{step},\"dist\":{dist}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            comm.send_panel(dir.physical(me + dist, p), tag, v_acc.as_ref());
        }
        if me >= dist {
            let mut v_in = ws.take(m, r);
            comm.recv_panel_into(dir.physical(me - dist, p), tag, v_in.as_mut());
            let m_acc = trace
                .mats
                .get(combine_idx)
                .unwrap_or_else(|| panic!("scan trace too short at combine {combine_idx}"));
            combine_idx += 1;
            // v_acc = m_acc * v_in + v_acc (the O(M^2 R) combine).
            gemm(1.0, m_acc, Trans::No, &v_in, Trans::No, 1.0, &mut v_acc);
            ws.put(v_in);
            comm.compute(AffinePair::apply_flops(m, r));
        }
        dist <<= 1;
        step += 1;
    }
    let tag = tag_base + step;
    if me + 1 < p {
        comm.send_panel(dir.physical(me + 1, p), tag, v_acc.as_ref());
    }
    ws.put(v_acc);
    if me > 0 {
        let mut out = ws.take(m, r);
        comm.recv_panel_into(dir.physical(me - 1, p), tag, out.as_mut());
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_mpsim::{run_spmd, CostModel};

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    /// Reference: sequential exclusive composition of per-rank pairs.
    fn reference_exscan(pairs: &[AffinePair]) -> Vec<Option<AffinePair>> {
        let mut out = vec![None];
        let mut acc: Option<AffinePair> = None;
        for pair in &pairs[..pairs.len() - 1] {
            acc = Some(match &acc {
                None => pair.clone(),
                // pair is later than everything in acc.
                Some(a) => AffinePair::compose(pair, a),
            });
            out.push(acc.clone());
        }
        out
    }

    fn rank_pair(rank: usize, m: usize, r: usize) -> AffinePair {
        AffinePair {
            mat: Mat::from_fn(m, m, |i, j| {
                ((rank * 31 + i * m + j) as f64 * 0.17).sin() * 0.8
            }),
            vec: Mat::from_fn(m, r, |i, j| ((rank * 17 + i * r + j) as f64 * 0.23).cos()),
        }
    }

    #[test]
    fn fresh_forward_matches_reference() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 3, 2)).collect();
            let expect = reference_exscan(&pairs);
            let pairs2 = pairs.clone();
            let out = run_spmd(p, ZERO, move |comm| {
                affine_exscan_fresh(
                    comm,
                    Direction::Forward,
                    0,
                    pairs2[comm.rank()].clone(),
                    None,
                )
            });
            for (rk, (result, expected)) in out.results.iter().zip(&expect).enumerate() {
                match (result, expected) {
                    (None, None) => {}
                    (Some(v), Some(e)) => {
                        assert!(bt_dense::rel_diff(v, &e.vec) < 1e-11, "p={p} rank={rk}")
                    }
                    other => panic!("p={p} rank={rk}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn fresh_backward_is_mirror_of_forward() {
        let p = 6;
        let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 2, 1)).collect();
        // Backward exclusive on rank r == forward exclusive with reversed
        // rank/pair order.
        let reversed: Vec<AffinePair> = pairs.iter().rev().cloned().collect();
        let expect = reference_exscan(&reversed);
        let pairs2 = pairs.clone();
        let out = run_spmd(p, ZERO, move |comm| {
            affine_exscan_fresh(
                comm,
                Direction::Backward,
                0,
                pairs2[comm.rank()].clone(),
                None,
            )
        });
        for (rk, result) in out.results.iter().enumerate() {
            let logical = p - 1 - rk;
            match (result, &expect[logical]) {
                (None, None) => {}
                (Some(v), Some(e)) => {
                    assert!(bt_dense::rel_diff(v, &e.vec) < 1e-11, "rank={rk}")
                }
                other => panic!("rank={rk}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn replay_matches_fresh() {
        for p in [1, 2, 4, 7, 9] {
            for dir in [Direction::Forward, Direction::Backward] {
                let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 3, 2)).collect();
                let pairs2 = pairs.clone();
                let out = run_spmd(p, ZERO, move |comm| {
                    let rk = comm.rank();
                    // Setup: record trace with zero-width vectors.
                    let mut trace = ScanTrace::default();
                    let setup_pair = AffinePair {
                        mat: pairs2[rk].mat.clone(),
                        vec: Mat::zero_width(3),
                    };
                    let _ = affine_exscan_fresh(comm, dir, 0, setup_pair, Some(&mut trace));
                    // Solve: replay with real vectors.
                    let mut ws = Workspace::new();
                    let replayed = affine_exscan_replay(
                        comm,
                        dir,
                        100,
                        pairs2[rk].vec.clone(),
                        &trace,
                        &mut ws,
                    );
                    // Reference: fresh scan with full pairs.
                    let fresh = affine_exscan_fresh(comm, dir, 200, pairs2[rk].clone(), None);
                    (replayed, fresh)
                });
                for (rk, (replayed, fresh)) in out.results.iter().enumerate() {
                    match (replayed, fresh) {
                        (None, None) => {}
                        (Some(a), Some(b)) => assert!(
                            bt_dense::rel_diff(a, b) < 1e-12,
                            "p={p} dir={dir:?} rank={rk}"
                        ),
                        other => panic!("p={p} dir={dir:?} rank={rk}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn replay_moves_fewer_bytes_than_fresh() {
        let p = 8;
        let m = 8;
        let r = 2;
        let fresh_bytes = {
            let out = run_spmd(p, ZERO, move |comm| {
                let _ = affine_exscan_fresh(
                    comm,
                    Direction::Forward,
                    0,
                    rank_pair(comm.rank(), m, r),
                    None,
                );
            });
            out.stats.total().bytes_sent
        };
        let replay_bytes = {
            let out = run_spmd(p, ZERO, move |comm| {
                let mut trace = ScanTrace::default();
                let pair = rank_pair(comm.rank(), m, r);
                let setup = AffinePair {
                    mat: pair.mat.clone(),
                    vec: Mat::zero_width(m),
                };
                let _ = affine_exscan_fresh(comm, Direction::Forward, 0, setup, Some(&mut trace));
                let before = comm.stats().bytes_sent;
                let _ = affine_exscan_replay(
                    comm,
                    Direction::Forward,
                    100,
                    pair.vec,
                    &trace,
                    &mut Workspace::new(),
                );
                comm.stats().bytes_sent - before
            });
            out.results.iter().sum::<u64>()
        };
        // Fresh messages carry M^2 + M R words; replay only M R.
        assert!(
            replay_bytes * 2 < fresh_bytes,
            "replay {replay_bytes} vs fresh {fresh_bytes}"
        );
    }

    #[test]
    fn direction_mapping_is_involution() {
        for p in [1, 2, 5, 8] {
            for r in 0..p {
                for dir in [Direction::Forward, Direction::Backward] {
                    assert_eq!(dir.physical(dir.logical(r, p), p), r);
                }
            }
        }
    }

    #[test]
    fn trace_storage_accounting() {
        let mut t = ScanTrace::default();
        t.mats.push(Mat::zeros(4, 4));
        t.mats.push(Mat::zeros(4, 4));
        // Cross-check against the element type's actual size rather than
        // a hardcoded 8, and against the matrices' true element count.
        let elems: usize = t.mats.iter().map(|m| m.as_slice().len()).sum();
        assert_eq!(
            t.storage_bytes(),
            (elems * std::mem::size_of::<f64>()) as u64
        );
        assert_eq!(t.storage_bytes(), 2 * 16 * 8);
        // Rectangular panels count exactly too.
        t.mats.push(Mat::zeros(3, 5));
        assert_eq!(t.storage_bytes(), (2 * 16 + 15) * 8);
    }
}
