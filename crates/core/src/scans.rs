//! Cross-rank recursive-doubling (Kogge-Stone) scans.
//!
//! These are the `log P` communication rounds of the algorithm. Three
//! variants share the same message pattern:
//!
//! * [`companion_exscan`] — Phase 1: exclusive scan of companion-matrix
//!   products (`2M x 2M` payloads, matrix-matrix combines);
//! * [`affine_exscan_fresh`] — Phases 2/3 of *classic* recursive
//!   doubling: full affine pairs travel (`M^2 + M R` words per step) and
//!   each combine pays the `O(M^3)` matrix product. Optionally records
//!   the accumulator matrices into a [`ScanTrace`];
//! * [`affine_exscan_replay`] — Phases 2/3 of the *accelerated*
//!   algorithm: only the `M x R` vector panels travel and each combine is
//!   the `O(M^2 R)` matrix-panel product against the recorded trace.
//!
//! The fresh-vs-replay split is the entire acceleration: per solve, both
//! the per-step payload and the per-step work drop by a factor of `M/R`
//! on the matrix side.
//!
//! Scans support both directions; the *backward* scan (Phase 3) runs the
//! identical algorithm on reversed logical ranks.

use bt_comm::{CommBackend, CostModel};
use bt_dense::{colsplit_plan_for, Element, Mat, Workspace};

use crate::companion::CompanionProduct;
use crate::pairs::AffinePair;

/// Scan direction: which physical rank is "logically first".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Logical order equals rank order (row 0 lives on the logical first
    /// rank). Used by the forward substitution scan.
    Forward,
    /// Logical order is reversed (row `N-1` lives on the logical first
    /// rank). Used by the backward substitution scan.
    Backward,
}

impl Direction {
    /// Logical index of `rank` in a world of `p`.
    #[inline]
    pub fn logical(self, rank: usize, p: usize) -> usize {
        match self {
            Direction::Forward => rank,
            Direction::Backward => p - 1 - rank,
        }
    }

    /// Physical rank of `logical` index in a world of `p`.
    #[inline]
    pub fn physical(self, logical: usize, p: usize) -> usize {
        // The mapping is an involution.
        self.logical(logical, p)
    }
}

/// Recorded accumulator matrices from a fresh scan, enabling replays.
///
/// `mats[k]` is the accumulator's matrix component *before* the `k`-th
/// receive-combine of the scan (in receive order). These depend only on
/// the coefficient matrix, never on right-hand sides.
#[derive(Debug, Clone)]
pub struct ScanTrace<E: Element = f64> {
    /// Pre-combine accumulator matrices, one per receive event.
    pub mats: Vec<Mat<E>>,
}

// Manual impl: `derive(Default)` would needlessly require `E: Default`'s
// interaction with the defaulted type parameter at every `::default()`
// call site to resolve; an empty trace is precision-free.
impl<E: Element> Default for ScanTrace<E> {
    fn default() -> Self {
        Self { mats: Vec::new() }
    }
}

impl<E: Element> ScanTrace<E> {
    /// Bytes of storage held by the trace (element bytes follow the
    /// trace's own precision: an `f32` trace holds half the bytes of the
    /// equivalent `f64` one).
    pub fn storage_bytes(&self) -> u64 {
        let elem = std::mem::size_of::<E>() as u64;
        self.mats
            .iter()
            .map(|m| (m.rows() * m.cols()) as u64 * elem)
            .sum()
    }
}

/// Exclusive scan of companion products across ranks.
///
/// Rank `r` contributes the product of its local `W` matrices; the result
/// on rank `r` is the product of all contributions of ranks `< r`
/// (`None` on rank 0, meaning identity). Combines are performed in rank
/// order (matrix products do not commute).
pub fn companion_exscan<C: CommBackend>(
    comm: &mut C,
    tag_base: u64,
    total: CompanionProduct,
) -> Option<CompanionProduct> {
    let p = comm.size();
    let me = comm.rank();
    let m = total.m();
    let mut acc = total;
    let mut dist = 1usize;
    let mut step = 0u64;
    while dist < p {
        let _round = bt_obs::span_with("scan", "companion_exscan.round", || {
            format!("{{\"step\":{step},\"dist\":{dist}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            comm.send(me + dist, tag, (acc.top.clone(), acc.bot.clone()));
        }
        if me >= dist {
            let (top, bot): (Mat, Mat) = comm.recv(me - dist, tag);
            let earlier = CompanionProduct { top, bot };
            // `earlier` covers lower-ranked W's: acc = acc * earlier.
            acc = earlier.compose_after(&acc);
            comm.compute(CompanionProduct::compose_flops(m));
        }
        dist <<= 1;
        step += 1;
    }
    // Shift the inclusive result right by one rank to make it exclusive.
    let tag = tag_base + step;
    if me + 1 < p {
        comm.send(me + 1, tag, (acc.top, acc.bot));
    }
    if me > 0 {
        let (top, bot): (Mat, Mat) = comm.recv(me - 1, tag);
        Some(CompanionProduct { top, bot })
    } else {
        None
    }
}

/// Exclusive affine scan with full pairs (classic recursive doubling).
///
/// `total` is this rank's composition of its local affine pairs (in row
/// order along `dir`). Returns the *vector component* of the exclusive
/// composition — the only part the per-row fixup needs — or `None` on the
/// logically first rank. If `record` is given, the accumulator matrices
/// are pushed for later [`affine_exscan_replay`] calls.
pub fn affine_exscan_fresh<C: CommBackend, E: Element>(
    comm: &mut C,
    dir: Direction,
    tag_base: u64,
    total: AffinePair<E>,
    mut record: Option<&mut ScanTrace<E>>,
) -> Option<Mat<E>> {
    let p = comm.size();
    let me = dir.logical(comm.rank(), p);
    let m = total.m();
    let r = total.r();
    let mut acc = total;
    let mut dist = 1usize;
    let mut step = 0u64;
    while dist < p {
        let _round = bt_obs::span_with("scan", "affine_fresh.round", || {
            format!("{{\"step\":{step},\"dist\":{dist}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            comm.send(
                dir.physical(me + dist, p),
                tag,
                (acc.mat.clone(), acc.vec.clone()),
            );
        }
        if me >= dist {
            let (mat, vec): (Mat<E>, Mat<E>) = comm.recv(dir.physical(me - dist, p), tag);
            if let Some(trace) = record.as_deref_mut() {
                trace.mats.push(acc.mat.clone());
            }
            acc = AffinePair::compose(&acc, &AffinePair { mat, vec });
            comm.compute(AffinePair::<E>::compose_flops(m, r));
        }
        dist <<= 1;
        step += 1;
    }
    let tag = tag_base + step;
    if me + 1 < p {
        comm.send(dir.physical(me + 1, p), tag, acc.vec);
    }
    if me > 0 {
        Some(comm.recv(dir.physical(me - 1, p), tag))
    } else {
        None
    }
}

/// Exclusive affine scan replaying a recorded trace (accelerated path).
///
/// `total_vec` is the vector component of this rank's local composition
/// for the current right-hand-side batch; `trace` must come from an
/// [`affine_exscan_fresh`] run on the same world size, direction, and
/// coefficient matrix. Only `M x R` panels travel; combines cost
/// `O(M^2 R)`.
///
/// This is the per-solve hot path, so every temporary comes from `ws`
/// and messages travel as pooled [`bt_mpsim::PanelBuf`]s: once `ws` and
/// the panel pool are warm, a replay performs zero heap allocations.
pub fn affine_exscan_replay<C: CommBackend, E: Element>(
    comm: &mut C,
    dir: Direction,
    tag_base: u64,
    total_vec: Mat<E>,
    trace: &ScanTrace<E>,
    ws: &mut Workspace<E>,
) -> Option<Mat<E>> {
    let r = total_vec.cols();
    affine_exscan_replay_tiled(comm, dir, tag_base, total_vec, trace, ws, r)
}

/// Wall counter mirroring the virtual seconds of replay-pipeline
/// communication hidden behind combine GEMMs (from
/// `bt_mpsim::RankStats::overlap_ns` deltas), summed over ranks.
static OBS_PIPELINE_OVERLAP_NS: bt_obs::Counter =
    bt_obs::Counter::new("bt_ard.pipeline.overlap_ns");

/// Number of columns in the `t`-th of the `ceil(r / tile)` column tiles,
/// together with its starting column.
#[inline]
fn tile_bounds(r: usize, tile: usize, t: usize) -> (usize, usize) {
    let t0 = t * tile;
    (t0, tile.min(r - t0))
}

/// [`affine_exscan_replay`] with an explicit RHS tile width: the `R`
/// columns travel as `ceil(R / tile)` back-to-back panels per round and
/// the combine for tile `j - 1` runs while tile `j` is on the wire (one
/// nonblocking receive in flight; the pipeline drains inside each round,
/// so rounds never reorder across the round boundary).
///
/// Numerics are **bitwise identical** for every `tile` (including
/// `tile >= R`, which is the unpiped schedule [`affine_exscan_replay`]
/// delegates to): the combine kernel is frozen from the full panel shape
/// via [`bt_dense::colsplit_plan`], whose per-column accumulation makes
/// column-tiled application exact, and message payloads concatenate to
/// the identical byte stream (per-`(src, dst, tag)` FIFO keeps tiles in
/// column order).
///
/// # Panics
///
/// Panics if `tile == 0` and `total_vec` has columns.
pub fn affine_exscan_replay_tiled<C: CommBackend, E: Element>(
    comm: &mut C,
    dir: Direction,
    tag_base: u64,
    total_vec: Mat<E>,
    trace: &ScanTrace<E>,
    ws: &mut Workspace<E>,
    tile: usize,
) -> Option<Mat<E>> {
    let p = comm.size();
    let me = dir.logical(comm.rank(), p);
    let m = total_vec.rows();
    let r = total_vec.cols();
    // A zero-width batch still takes part in every round as one empty
    // panel, keeping the message pattern identical to the unpiped path.
    let n_tiles = if r == 0 { 1 } else { r.div_ceil(tile) };
    let plan = colsplit_plan_for::<E>(m, m, r);
    let overlap_before = comm.overlap_seconds();
    let mut v_acc = total_vec;
    let mut dist = 1usize;
    let mut step = 0u64;
    let mut combine_idx = 0usize;
    while dist < p {
        let _round = bt_obs::span_with("scan", "affine_replay.round", || {
            format!("{{\"step\":{step},\"dist\":{dist},\"tiles\":{n_tiles}}}")
        });
        let tag = tag_base + step;
        if me + dist < p {
            // Eager-buffered sends snapshot the payload at the call, so
            // all of this round's tiles can be injected up front even
            // when the combines below mutate v_acc in place.
            let dst = dir.physical(me + dist, p);
            for t in 0..n_tiles {
                let (t0, w) = tile_bounds(r, tile, t);
                let req = comm.isend_panel(dst, tag, v_acc.as_ref().submatrix(0, t0, m, w));
                comm.send_wait(req);
            }
        }
        if me >= dist {
            let src = dir.physical(me - dist, p);
            let m_acc = trace
                .mats
                .get(combine_idx)
                .unwrap_or_else(|| panic!("scan trace too short at combine {combine_idx}"));
            combine_idx += 1;
            // Software pipeline: tile j is in flight while tile j - 1
            // is combined; the round boundary drains it (pending == None
            // after the loop).
            let (_, w0) = tile_bounds(r, tile, 0);
            let mut pending = Some(comm.irecv_panel_into(src, tag, ws.take(m, w0)));
            for t in 0..n_tiles {
                let (t0, w) = tile_bounds(r, tile, t);
                let req = pending.take().expect("pipeline primed");
                if t + 1 < n_tiles {
                    let (_, w_next) = tile_bounds(r, tile, t + 1);
                    pending = Some(comm.irecv_panel_into(src, tag, ws.take(m, w_next)));
                }
                let v_in = comm.recv_wait(req);
                let _tile_span = bt_obs::span_with("scan", "affine_replay.tile", || {
                    format!("{{\"step\":{step},\"tile\":{t},\"cols\":{w}}}")
                });
                // v_acc[:, t0..t0+w] += m_acc * v_in (the O(M^2 R)
                // combine, one column tile at a time).
                plan.apply(
                    E::ONE,
                    m_acc,
                    v_in.as_ref(),
                    v_acc.as_mut().submatrix_mut(0, t0, m, w),
                );
                ws.put(v_in);
                comm.compute(AffinePair::<E>::apply_flops(m, w));
            }
        }
        dist <<= 1;
        step += 1;
    }
    if bt_obs::enabled() {
        let hidden = comm.overlap_seconds() - overlap_before;
        OBS_PIPELINE_OVERLAP_NS.add((hidden * 1e9).round() as u64);
    }
    // Exclusive shift: one paired exchange with the logical neighbours.
    let tag = tag_base + step;
    let send_to = (me + 1 < p).then(|| (dir.physical(me + 1, p), v_acc.as_ref()));
    let result = if me > 0 {
        let mut out = ws.take(m, r);
        comm.exchange_panel(tag, send_to, Some((dir.physical(me - 1, p), out.as_mut())));
        Some(out)
    } else {
        comm.exchange_panel(tag, send_to, None);
        None
    };
    ws.put(v_acc);
    result
}

/// Picks the default RHS tile width for the replay pipeline by
/// simulating one scan round's receiver clock under `model` for each
/// candidate width and keeping the fastest (the largest on ties, so a
/// free model degenerates to the unpiped `tile = r`).
///
/// Candidates are powers of two from 16 columns up (narrower tiles are
/// latency-dominated for any realistic model) plus the unpiped `r`
/// itself, capped at 64 tiles per round so per-message book-keeping
/// stays negligible.
pub fn auto_rhs_tile(model: &CostModel, m: usize, r: usize) -> usize {
    auto_rhs_tile_for::<f64>(model, m, r)
}

/// [`auto_rhs_tile`] at an explicit element width: `f32` panels put half
/// the bytes on the wire per tile, which can shift the modeled optimum
/// toward wider tiles.
pub fn auto_rhs_tile_for<E: Element>(model: &CostModel, m: usize, r: usize) -> usize {
    // One round from the receiver's perspective: the sender injects
    // tiles back to back (link serialization), the receiver combines
    // each tile as it lands.
    let round_clock = |tile: usize| -> f64 {
        let n_tiles = r.div_ceil(tile);
        let mut link_busy = 0.0f64;
        let mut clock = 0.0f64;
        for t in 0..n_tiles {
            let (_, w) = tile_bounds(r, tile, t);
            let bytes = (m * w * std::mem::size_of::<E>()) as u64;
            let avail = link_busy + model.msg_time(bytes);
            link_busy += model.per_byte_s * bytes as f64;
            clock = clock.max(avail) + model.compute_time(AffinePair::<E>::apply_flops(m, w));
        }
        clock
    };
    if r <= 16 {
        return r.max(1);
    }
    let mut best_tile = r;
    let mut best_clock = round_clock(r);
    // Descending candidates + strict-improvement test = larger tile on
    // ties.
    let mut cand = (r - 1).next_power_of_two() / 2;
    while cand >= 16 {
        if r.div_ceil(cand) <= 64 {
            let clock = round_clock(cand);
            if clock < best_clock {
                best_clock = clock;
                best_tile = cand;
            }
        }
        cand /= 2;
    }
    best_tile
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_mpsim::{run_spmd, CostModel};

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    /// Reference: sequential exclusive composition of per-rank pairs.
    fn reference_exscan(pairs: &[AffinePair]) -> Vec<Option<AffinePair>> {
        let mut out = vec![None];
        let mut acc: Option<AffinePair> = None;
        for pair in &pairs[..pairs.len() - 1] {
            acc = Some(match &acc {
                None => pair.clone(),
                // pair is later than everything in acc.
                Some(a) => AffinePair::compose(pair, a),
            });
            out.push(acc.clone());
        }
        out
    }

    fn rank_pair(rank: usize, m: usize, r: usize) -> AffinePair {
        AffinePair {
            mat: Mat::from_fn(m, m, |i, j| {
                ((rank * 31 + i * m + j) as f64 * 0.17).sin() * 0.8
            }),
            vec: Mat::from_fn(m, r, |i, j| ((rank * 17 + i * r + j) as f64 * 0.23).cos()),
        }
    }

    #[test]
    fn fresh_forward_matches_reference() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 3, 2)).collect();
            let expect = reference_exscan(&pairs);
            let pairs2 = pairs.clone();
            let out = run_spmd(p, ZERO, move |comm| {
                affine_exscan_fresh(
                    comm,
                    Direction::Forward,
                    0,
                    pairs2[comm.rank()].clone(),
                    None,
                )
            });
            for (rk, (result, expected)) in out.results.iter().zip(&expect).enumerate() {
                match (result, expected) {
                    (None, None) => {}
                    (Some(v), Some(e)) => {
                        assert!(bt_dense::rel_diff(v, &e.vec) < 1e-11, "p={p} rank={rk}")
                    }
                    other => panic!("p={p} rank={rk}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn fresh_backward_is_mirror_of_forward() {
        let p = 6;
        let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 2, 1)).collect();
        // Backward exclusive on rank r == forward exclusive with reversed
        // rank/pair order.
        let reversed: Vec<AffinePair> = pairs.iter().rev().cloned().collect();
        let expect = reference_exscan(&reversed);
        let pairs2 = pairs.clone();
        let out = run_spmd(p, ZERO, move |comm| {
            affine_exscan_fresh(
                comm,
                Direction::Backward,
                0,
                pairs2[comm.rank()].clone(),
                None,
            )
        });
        for (rk, result) in out.results.iter().enumerate() {
            let logical = p - 1 - rk;
            match (result, &expect[logical]) {
                (None, None) => {}
                (Some(v), Some(e)) => {
                    assert!(bt_dense::rel_diff(v, &e.vec) < 1e-11, "rank={rk}")
                }
                other => panic!("rank={rk}: mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn replay_matches_fresh() {
        for p in [1, 2, 4, 7, 9] {
            for dir in [Direction::Forward, Direction::Backward] {
                let pairs: Vec<AffinePair> = (0..p).map(|rk| rank_pair(rk, 3, 2)).collect();
                let pairs2 = pairs.clone();
                let out = run_spmd(p, ZERO, move |comm| {
                    let rk = comm.rank();
                    // Setup: record trace with zero-width vectors.
                    let mut trace = ScanTrace::default();
                    let setup_pair = AffinePair {
                        mat: pairs2[rk].mat.clone(),
                        vec: Mat::zero_width(3),
                    };
                    let _ = affine_exscan_fresh(comm, dir, 0, setup_pair, Some(&mut trace));
                    // Solve: replay with real vectors.
                    let mut ws = Workspace::new();
                    let replayed = affine_exscan_replay(
                        comm,
                        dir,
                        100,
                        pairs2[rk].vec.clone(),
                        &trace,
                        &mut ws,
                    );
                    // Reference: fresh scan with full pairs.
                    let fresh = affine_exscan_fresh(comm, dir, 200, pairs2[rk].clone(), None);
                    (replayed, fresh)
                });
                for (rk, (replayed, fresh)) in out.results.iter().enumerate() {
                    match (replayed, fresh) {
                        (None, None) => {}
                        (Some(a), Some(b)) => assert!(
                            bt_dense::rel_diff(a, b) < 1e-12,
                            "p={p} dir={dir:?} rank={rk}"
                        ),
                        other => panic!("p={p} dir={dir:?} rank={rk}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn replay_moves_fewer_bytes_than_fresh() {
        let p = 8;
        let m = 8;
        let r = 2;
        let fresh_bytes = {
            let out = run_spmd(p, ZERO, move |comm| {
                let _ = affine_exscan_fresh(
                    comm,
                    Direction::Forward,
                    0,
                    rank_pair(comm.rank(), m, r),
                    None,
                );
            });
            out.stats.total().bytes_sent
        };
        let replay_bytes = {
            let out = run_spmd(p, ZERO, move |comm| {
                let mut trace = ScanTrace::default();
                let pair = rank_pair(comm.rank(), m, r);
                let setup = AffinePair {
                    mat: pair.mat.clone(),
                    vec: Mat::zero_width(m),
                };
                let _ = affine_exscan_fresh(comm, Direction::Forward, 0, setup, Some(&mut trace));
                let before = comm.stats().bytes_sent;
                let _ = affine_exscan_replay(
                    comm,
                    Direction::Forward,
                    100,
                    pair.vec,
                    &trace,
                    &mut Workspace::new(),
                );
                comm.stats().bytes_sent - before
            });
            out.results.iter().sum::<u64>()
        };
        // Fresh messages carry M^2 + M R words; replay only M R.
        assert!(
            replay_bytes * 2 < fresh_bytes,
            "replay {replay_bytes} vs fresh {fresh_bytes}"
        );
    }

    #[test]
    fn tiled_replay_is_bitwise_identical_to_unpiped() {
        // Every tile width — including tile = 1, tile > r, and r not
        // divisible by tile — must reproduce the unpiped replay bit for
        // bit (same kernel plan, same column partitions, same FIFO tile
        // order on the wire).
        let (m, r) = (3, 5);
        for p in [2, 4, 7] {
            let out = run_spmd(p, ZERO, move |comm| {
                let rk = comm.rank();
                let mut trace = ScanTrace::default();
                let pair = rank_pair(rk, m, r);
                let setup = AffinePair {
                    mat: pair.mat.clone(),
                    vec: Mat::zero_width(m),
                };
                let _ = affine_exscan_fresh(comm, Direction::Forward, 0, setup, Some(&mut trace));
                let mut ws = Workspace::new();
                let base = affine_exscan_replay(
                    comm,
                    Direction::Forward,
                    1000,
                    pair.vec.clone(),
                    &trace,
                    &mut ws,
                );
                let tiled: Vec<Option<Mat>> = [1usize, 2, 3, 5, 9]
                    .iter()
                    .enumerate()
                    .map(|(i, &tile)| {
                        affine_exscan_replay_tiled(
                            comm,
                            Direction::Forward,
                            2000 + 100 * i as u64,
                            pair.vec.clone(),
                            &trace,
                            &mut ws,
                            tile,
                        )
                    })
                    .collect();
                (base, tiled)
            });
            for (rk, (base, tiled)) in out.results.iter().enumerate() {
                for (i, t) in tiled.iter().enumerate() {
                    assert_eq!(base, t, "p={p} rank={rk} tile case {i}");
                }
            }
            assert!(out.stats.is_balanced());
        }
    }

    #[test]
    fn tiled_replay_moves_same_bytes_as_unpiped() {
        let (m, r, p) = (4, 6, 4);
        let out = run_spmd(p, ZERO, move |comm| {
            let mut trace = ScanTrace::default();
            let pair = rank_pair(comm.rank(), m, r);
            let setup = AffinePair {
                mat: pair.mat.clone(),
                vec: Mat::zero_width(m),
            };
            let _ = affine_exscan_fresh(comm, Direction::Forward, 0, setup, Some(&mut trace));
            let mut ws = Workspace::new();
            let before = comm.stats().bytes_sent;
            let _ = affine_exscan_replay(
                comm,
                Direction::Forward,
                1000,
                pair.vec.clone(),
                &trace,
                &mut ws,
            );
            let unpiped = comm.stats().bytes_sent - before;
            let before = comm.stats().bytes_sent;
            let _ = affine_exscan_replay_tiled(
                comm,
                Direction::Forward,
                2000,
                pair.vec.clone(),
                &trace,
                &mut ws,
                2,
            );
            (unpiped, comm.stats().bytes_sent - before)
        });
        for (unpiped, tiled) in &out.results {
            assert_eq!(unpiped, tiled);
        }
    }

    #[test]
    fn auto_tile_degenerates_to_unpiped_on_free_model() {
        assert_eq!(auto_rhs_tile(&CostModel::zero(), 8, 4096), 4096);
        // Narrow batches never tile.
        assert_eq!(auto_rhs_tile(&CostModel::cluster(), 8, 16), 16);
        assert_eq!(auto_rhs_tile(&CostModel::cluster(), 8, 1), 1);
        assert_eq!(auto_rhs_tile(&CostModel::cluster(), 8, 0), 1);
    }

    #[test]
    fn auto_tile_splits_wide_batches_under_real_models() {
        // With small blocks the combine is bandwidth-bound (comm/compute
        // per round = 4/M under both presets), so a wide panel must be
        // pipelined in tiles.
        for model in [CostModel::cluster(), CostModel::hpc()] {
            let tile = auto_rhs_tile(&model, 8, 4096);
            assert!(
                (16..4096).contains(&tile) && tile.is_power_of_two(),
                "tile = {tile}"
            );
            assert!(4096usize.div_ceil(tile) <= 64);
        }
    }

    #[test]
    fn direction_mapping_is_involution() {
        for p in [1, 2, 5, 8] {
            for r in 0..p {
                for dir in [Direction::Forward, Direction::Backward] {
                    assert_eq!(dir.physical(dir.logical(r, p), p), r);
                }
            }
        }
    }

    #[test]
    fn trace_storage_accounting() {
        let mut t: ScanTrace = ScanTrace::default();
        t.mats.push(Mat::zeros(4, 4));
        t.mats.push(Mat::zeros(4, 4));
        // Cross-check against the element type's actual size rather than
        // a hardcoded 8, and against the matrices' true element count.
        let elems: usize = t.mats.iter().map(|m| m.as_slice().len()).sum();
        assert_eq!(
            t.storage_bytes(),
            (elems * std::mem::size_of::<f64>()) as u64
        );
        assert_eq!(t.storage_bytes(), 2 * 16 * 8);
        // Rectangular panels count exactly too.
        t.mats.push(Mat::zeros(3, 5));
        assert_eq!(t.storage_bytes(), (2 * 16 + 15) * 8);
    }
}
