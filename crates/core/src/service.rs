//! # Long-lived solver service: factor cache + RHS coalescing
//!
//! [`crate::session::ArdSession`] answers "factor once, replay many" for a *single*
//! matrix owned by a single caller. A real workload (the paper's driving
//! applications — tracking, Kalman smoothing, spectral embarrassments of
//! independent solves) looks different: many clients submit single
//! right-hand-side solves against a *set* of recurring matrices, and the
//! `O(M^2 R)` replay bound only pays off if those single-column requests
//! are batched into wide panels before they hit the SPMD solver.
//!
//! [`SolverService`] is that layer:
//!
//! * **Factorization cache** — matrices are identified by a content
//!   fingerprint ([`MatrixKey`]: FNV-1a over `N`, `M` and every block
//!   entry's bit pattern). [`SolverService::register`] returns the cached
//!   [`crate::session::ArdSession`]'s key on a hit and factors on a miss; entries are
//!   evicted least-recently-used once stored factor bytes exceed the
//!   configured budget (the most recent entry is never evicted, and
//!   in-flight solves keep their entry alive via `Arc`, so eviction can
//!   never invalidate a queued request).
//! * **RHS coalescer** — [`SolverService::submit`] enqueues a request
//!   and returns a [`SolveTicket`]; a dispatcher thread groups queued
//!   requests by matrix and flushes a group when its total width reaches
//!   `max_batch` **or** the oldest request has waited `max_delay`,
//!   whichever comes first. The group is stacked into one wide panel,
//!   solved with a single replay, and split back per request — so `k`
//!   concurrent single-RHS clients pay one `O(M^2 k)` replay instead of
//!   `k` serialized `O(M^2)` solves, each with its own `O(log P)` latency
//!   chain.
//!
//! Metrics (under `BT_OBS=1`): `bt_service.cache.{hit,miss,evict}`,
//! `bt_service.cache.bytes`, `bt_service.batch.dispatches`,
//! `bt_service.batch.width`, `bt_service.queue.wait_ns`. Unconditional
//! counters are available via [`SolverService::stats`].
//!
//! ## Telemetry (always on)
//!
//! Three facilities run regardless of `BT_OBS`, because latency numbers
//! and crash forensics are only useful if they were being collected
//! *before* anyone thought to ask:
//!
//! * **Request ids** — [`SolverService::submit`] mints a process-unique
//!   id per request ([`SolveTicket::request_id`]); the dispatcher mints
//!   a batch id per coalesced dispatch and installs a
//!   [`bt_obs::TraceCtx`] for the whole solve, so under `BT_OBS=1` every
//!   span the dispatch touches — queue wait, batch assembly, the replay
//!   solve, each rank's scan rounds — carries the request ids in one
//!   merged Chrome trace.
//! * **Latency recorders** — per-stage HDR histograms
//!   (`bt_service.{queue_wait,solve,request_total,batch_assemble,factor}_ns`,
//!   see [`bt_obs::hdr`]) feed p50/p95/p99 by stage; scrape them live via
//!   [`bt_obs::exporter`] (`BT_OBS_ADDR`).
//! * **Flight recorder** — every submit, reject, registration, eviction,
//!   dispatch and solve outcome lands in the [`bt_obs::flight`] ring.
//!   When a dispatched solve panics the ring is dumped to
//!   [`ServiceConfig::flight_dump_dir`] (default from `BT_FLIGHT_DIR`),
//!   so a `SolveFailed` ticket always has the events leading up to it.
//!
//! A solve that panics inside the SPMD world is contained: the batch's
//! tickets all resolve to [`ServiceError::SolveFailed`], the dispatcher
//! survives, and other cached matrices are unaffected (the panicked
//! session's factors are lost, as documented in [`crate::session`]).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bt_blocktri::{BlockRowSource, BlockVec, FactorError};
use bt_mpsim::CostModel;
use crossbeam::channel::{unbounded, Receiver, Sender};

use bt_comm::SpmdBackend;
use bt_mpsim::SimBackend;

use crate::mixed::Precision;
use crate::session::ArdSessionOn;

static OBS_CACHE_HIT: bt_obs::Counter = bt_obs::Counter::new("bt_service.cache.hit");
static OBS_CACHE_MISS: bt_obs::Counter = bt_obs::Counter::new("bt_service.cache.miss");
static OBS_CACHE_EVICT: bt_obs::Counter = bt_obs::Counter::new("bt_service.cache.evict");
static OBS_CACHE_BYTES: bt_obs::Gauge = bt_obs::Gauge::new("bt_service.cache.bytes");
static OBS_DISPATCHES: bt_obs::Counter = bt_obs::Counter::new("bt_service.batch.dispatches");
static OBS_BATCH_WIDTH: bt_obs::Histogram = bt_obs::Histogram::new("bt_service.batch.width");
static OBS_QUEUE_WAIT: bt_obs::Histogram = bt_obs::Histogram::new("bt_service.queue.wait_ns");

// Always-on per-stage latency recorders (not BT_OBS-gated; see the
// module docs). Nanosecond units throughout.
static LAT_QUEUE_WAIT: bt_obs::Latency = bt_obs::Latency::new("bt_service.queue_wait_ns");
static LAT_SOLVE: bt_obs::Latency = bt_obs::Latency::new("bt_service.solve_ns");
static LAT_REQUEST_TOTAL: bt_obs::Latency = bt_obs::Latency::new("bt_service.request_total_ns");
static LAT_BATCH_ASSEMBLE: bt_obs::Latency = bt_obs::Latency::new("bt_service.batch_assemble_ns");
static LAT_FACTOR: bt_obs::Latency = bt_obs::Latency::new("bt_service.factor_ns");

/// Content fingerprint identifying a registered matrix.
///
/// 64-bit FNV-1a over `(N, M, every block entry's `f64` bit pattern)` in
/// row order. Two matrices with identical contents hash to the same key
/// regardless of how their [`BlockRowSource`] is implemented; distinct
/// matrices collide with probability ~2^-64, which the service treats as
/// negligible (a collision would silently reuse the wrong factors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixKey(u64);

impl MatrixKey {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fingerprints a matrix by content. `O(N M^2)` — cheap next to the
    /// `O(M^3 N / P)` factorization it deduplicates.
    pub fn fingerprint<S: BlockRowSource + ?Sized>(src: &S) -> Self {
        Self::fingerprint_with(src, Precision::F64)
    }

    /// [`MatrixKey::fingerprint`] with the factor precision mixed into
    /// the key, so `f32`-factored and `f64`-factored sessions of the
    /// same matrix coexist in one cache. `F64` keys are byte-identical
    /// to [`MatrixKey::fingerprint`] (nothing extra is mixed), keeping
    /// every pre-existing key stable.
    pub fn fingerprint_with<S: BlockRowSource + ?Sized>(src: &S, precision: Precision) -> Self {
        let mut h = Self::FNV_OFFSET;
        let mut mix = |w: u64| {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(Self::FNV_PRIME);
            }
        };
        mix(src.n() as u64);
        mix(src.m() as u64);
        for i in 0..src.n() {
            let row = src.row(i);
            for blk in [&row.a, &row.b, &row.c] {
                for &v in blk.as_slice() {
                    mix(v.to_bits());
                }
            }
        }
        if precision == Precision::F32 {
            mix(0x6d69_7865_645f_6633); // "mixed_f3" tag
        }
        Self(h)
    }

    /// The raw 64-bit fingerprint.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MatrixKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Configuration for a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// SPMD world size every cached session is factored for.
    pub ranks: usize,
    /// Cost model for factorization and replay.
    pub model: CostModel,
    /// Factor-byte budget for the cache. The least-recently-used entry
    /// is evicted while the total exceeds this, but the most recently
    /// touched entry always stays (one matrix must remain servable).
    pub cache_bytes: u64,
    /// Width trigger: a per-matrix group of queued requests is flushed
    /// as soon as its total RHS column count reaches this.
    pub max_batch: usize,
    /// Deadline trigger: a queued request is dispatched at most this
    /// long after it was submitted, batched with whatever same-matrix
    /// requests have accumulated behind it.
    pub max_delay: Duration,
    /// Run cached sessions on persistent [`bt_mpsim::SpmdWorld`]s
    /// instead of spawning `ranks` threads per dispatch.
    pub world_reuse: bool,
    /// When set, trim each rank's pooled solve workspace back to this
    /// many bytes after every dispatch, so one oversized batch does not
    /// pin its high-water allocation for the life of the service.
    pub ws_trim_bytes: Option<u64>,
    /// Directory the flight-recorder ring is dumped to when a dispatched
    /// solve panics (one `bt-flight-batch<id>.json` per panicked batch).
    /// `None` disables dumping; [`ServiceConfig::new`] seeds it from the
    /// `BT_FLIGHT_DIR` environment variable when set.
    pub flight_dump_dir: Option<std::path::PathBuf>,
}

impl ServiceConfig {
    /// Defaults: 256 MiB factor cache, width-32 batches, 2 ms deadline,
    /// persistent worlds on, no workspace trimming, flight dumps to
    /// `$BT_FLIGHT_DIR` when that variable is set.
    pub fn new(ranks: usize, model: CostModel) -> Self {
        Self {
            ranks,
            model,
            cache_bytes: 256 << 20,
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            world_reuse: true,
            ws_trim_bytes: None,
            flight_dump_dir: std::env::var_os("BT_FLIGHT_DIR").map(std::path::PathBuf::from),
        }
    }
}

/// Error from the service layer.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// Factorization failed while registering a matrix.
    Factorization(FactorError),
    /// The matrix has fewer block rows than the configured world size.
    TooFewRows {
        /// Block rows in the offending matrix.
        n: usize,
        /// Configured world size.
        p: usize,
    },
    /// The key was never registered or its entry has been evicted.
    UnknownKey(MatrixKey),
    /// The right-hand side's `(N, M)` does not match the registered
    /// matrix. Mismatched requests are rejected at submit time — they
    /// are never silently batched with compatible ones.
    ShapeMismatch {
        /// `(N, M)` of the registered matrix.
        expected: (usize, usize),
        /// `(N, M)` of the submitted right-hand side.
        got: (usize, usize),
    },
    /// The SPMD solve panicked; the message is the panic payload. The
    /// session's factors are lost — re-register the matrix to recover.
    SolveFailed(String),
    /// The service dropped before this request completed.
    ShuttingDown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Factorization(e) => write!(f, "factorization failed: {e}"),
            Self::TooFewRows { n, p } => {
                write!(
                    f,
                    "matrix has {n} block rows but the service runs {p} ranks"
                )
            }
            Self::UnknownKey(k) => write!(f, "matrix key {k} is not cached"),
            Self::ShapeMismatch { expected, got } => write!(
                f,
                "rhs shape (N, M) = {got:?} does not match registered matrix {expected:?}"
            ),
            Self::SolveFailed(msg) => write!(f, "solve failed: {msg}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Factorization(e) => Some(e),
            _ => None,
        }
    }
}

/// Completed solve handed back through a [`SolveTicket`].
#[derive(Debug)]
pub struct SolveResponse {
    /// The solution panel for this request's right-hand side.
    pub x: BlockVec,
    /// The request id minted at submit (same as the ticket's).
    pub request_id: u64,
    /// Id of the coalesced dispatch this request rode in.
    pub batch_id: u64,
    /// Total column count of the coalesced batch this request rode in.
    pub batch_width: usize,
    /// Time the request spent queued before its batch dispatched.
    pub queue_wait: Duration,
    /// Wall time of the batched SPMD solve (shared by the whole batch).
    pub solve_time: Duration,
}

/// Handle to an in-flight solve; redeem with [`SolveTicket::wait`].
#[derive(Debug)]
pub struct SolveTicket {
    rx: Receiver<Result<SolveResponse, ServiceError>>,
    enqueued: Instant,
    request_id: u64,
}

impl SolveTicket {
    /// Blocks until the batched solve completes.
    ///
    /// # Errors
    ///
    /// [`ServiceError::SolveFailed`] if the SPMD solve panicked,
    /// [`ServiceError::ShuttingDown`] if the service dropped first.
    pub fn wait(self) -> Result<SolveResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }

    /// When the request entered the queue.
    pub fn enqueued_at(&self) -> Instant {
        self.enqueued
    }

    /// The process-unique request id minted at submit — the id this
    /// request's trace spans and flight events carry.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }
}

/// Unconditional counters (independent of `BT_OBS`), snapshot via
/// [`SolverService::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// `register` calls answered from the cache.
    pub cache_hits: u64,
    /// `register` calls that factored a new session.
    pub cache_misses: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Requests accepted by `submit`.
    pub requests: u64,
    /// Batches dispatched to the SPMD solver.
    pub dispatches: u64,
    /// Total RHS columns dispatched (sum of batch widths).
    pub dispatched_columns: u64,
    /// Widest batch dispatched so far.
    pub max_batch_width: u64,
    /// Workspace bytes released by post-dispatch trims.
    pub ws_trimmed_bytes: u64,
    /// Factor bytes currently cached.
    pub cache_bytes: u64,
    /// Entries currently cached.
    pub cached_entries: u64,
}

#[derive(Default)]
struct AtomicCounters {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
    requests: AtomicU64,
    dispatches: AtomicU64,
    dispatched_columns: AtomicU64,
    max_batch_width: AtomicU64,
    ws_trimmed_bytes: AtomicU64,
}

struct CacheEntry<B: SpmdBackend> {
    key: MatrixKey,
    session: ArdSessionOn<B>,
    bytes: u64,
}

struct CacheSlot<B: SpmdBackend> {
    entry: Arc<CacheEntry<B>>,
    last_use: u64,
}

struct CacheState<B: SpmdBackend> {
    map: HashMap<MatrixKey, CacheSlot<B>>,
    seq: u64,
    bytes: u64,
}

// Manual impl: `derive` would demand `B: Default` for a marker type.
impl<B: SpmdBackend> Default for CacheState<B> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            seq: 0,
            bytes: 0,
        }
    }
}

struct Pending<B: SpmdBackend> {
    entry: Arc<CacheEntry<B>>,
    rhs: BlockVec,
    enqueued: Instant,
    /// Submit time in trace-epoch ns, for the retroactive queue-wait span.
    t_submit_ns: u64,
    request_id: u64,
    tx: Sender<Result<SolveResponse, ServiceError>>,
}

struct QueueState<B: SpmdBackend> {
    pending: VecDeque<Pending<B>>,
    shutdown: bool,
}

impl<B: SpmdBackend> Default for QueueState<B> {
    fn default() -> Self {
        Self {
            pending: VecDeque::new(),
            shutdown: false,
        }
    }
}

struct Inner<B: SpmdBackend> {
    cfg: ServiceConfig,
    cache: Mutex<CacheState<B>>,
    queue: Mutex<QueueState<B>>,
    queue_cv: Condvar,
    counters: AtomicCounters,
}

/// Long-lived solver front end: factorization cache plus asynchronous
/// right-hand-side coalescer. See the [module docs](self).
pub struct ServiceOn<B: SpmdBackend> {
    inner: Arc<Inner<B>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

/// The service on the default virtual-clock simulator backend — the
/// spelling almost all code uses; the generic [`ServiceOn`] serves the
/// same cache + coalescer over any [`SpmdBackend`] (e.g.
/// `bt_shm::ShmBackend` for wall-clock serving).
pub type SolverService = ServiceOn<SimBackend>;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<B: SpmdBackend> ServiceOn<B> {
    /// Starts the service (spawns the dispatcher thread).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.ranks == 0` or `cfg.max_batch == 0`.
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.ranks > 0, "service needs at least one rank");
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let inner = Arc::new(Inner {
            cfg,
            cache: Mutex::new(CacheState::default()),
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            counters: AtomicCounters::default(),
        });
        let worker = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("bt-service-dispatch".into())
            .spawn(move || dispatcher_loop(&worker))
            .expect("spawn service dispatcher");
        Self {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Ensures `src` is factored and cached; returns its key.
    ///
    /// On a cache hit this costs one fingerprint pass. On a miss the
    /// matrix is factored **outside** the cache lock (other threads keep
    /// hitting the cache meanwhile); if two threads race to register the
    /// same matrix, one factorization wins and the other is dropped.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TooFewRows`] if `src.n() < ranks`,
    /// [`ServiceError::Factorization`] if setup breaks down.
    pub fn register<S: BlockRowSource + Sync>(&self, src: &S) -> Result<MatrixKey, ServiceError> {
        self.register_with_precision(src, Precision::F64)
    }

    /// [`SolverService::register`] with an explicit factor precision.
    ///
    /// [`Precision::F64`] is exactly `register` (same key, same classic
    /// session). [`Precision::F32`] factors through the mixed path
    /// ([`ArdSessionOn::create_mixed`]): half-width factors + `f64`
    /// refinement when the gray-zone gate allows it, a transparent
    /// `f64` fallback when it does not — either way under a key distinct
    /// from the `f64` registration, so both precisions of one matrix can
    /// be cached and served side by side.
    ///
    /// # Errors
    ///
    /// Same as [`SolverService::register`].
    pub fn register_with_precision<S: BlockRowSource + Sync>(
        &self,
        src: &S,
        precision: Precision,
    ) -> Result<MatrixKey, ServiceError> {
        let key = MatrixKey::fingerprint_with(src, precision);
        {
            let mut cache = lock(&self.inner.cache);
            cache.seq += 1;
            let seq = cache.seq;
            if let Some(slot) = cache.map.get_mut(&key) {
                slot.last_use = seq;
                self.inner.counters.cache_hits.fetch_add(1, Relaxed);
                OBS_CACHE_HIT.incr();
                return Ok(key);
            }
        }
        self.inner.counters.cache_misses.fetch_add(1, Relaxed);
        OBS_CACHE_MISS.incr();
        if src.n() < self.inner.cfg.ranks {
            return Err(ServiceError::TooFewRows {
                n: src.n(),
                p: self.inner.cfg.ranks,
            });
        }
        let factor_start = Instant::now();
        let session = match precision {
            Precision::F64 => {
                ArdSessionOn::<B>::create(self.inner.cfg.ranks, self.inner.cfg.model, src)
            }
            Precision::F32 => {
                ArdSessionOn::<B>::create_mixed(self.inner.cfg.ranks, self.inner.cfg.model, src)
            }
        }
        .map_err(ServiceError::Factorization)?;
        LAT_FACTOR.record_duration(factor_start.elapsed());
        session.set_world_reuse(self.inner.cfg.world_reuse);
        let bytes = session.factor_bytes();
        bt_obs::flight::record(
            "register",
            0,
            0,
            key.as_u64(),
            format!("bytes={bytes} precision={}", session.precision()),
        );
        let entry = Arc::new(CacheEntry {
            key,
            session,
            bytes,
        });
        self.inner.insert(entry);
        Ok(key)
    }

    /// Enqueues one solve request; the dispatcher batches it with other
    /// requests against the same matrix. Returns immediately.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownKey`] if `key` is not cached (never
    /// registered, or evicted — re-[`register`](Self::register)),
    /// [`ServiceError::ShapeMismatch`] if `y` does not match the
    /// registered matrix (checked here, so a bad request can never
    /// corrupt a batch), [`ServiceError::ShuttingDown`] after drop began.
    pub fn submit(&self, key: MatrixKey, y: &BlockVec) -> Result<SolveTicket, ServiceError> {
        let request_id = bt_obs::ctx::next_request_id();
        let entry = match self.inner.lookup(key) {
            Some(entry) => entry,
            None => {
                bt_obs::flight::record("reject", request_id, 0, key.as_u64(), "unknown key");
                return Err(ServiceError::UnknownKey(key));
            }
        };
        let expected = (entry.session.n(), entry.session.m());
        let got = (y.n(), y.m());
        if expected != got {
            bt_obs::flight::record(
                "reject",
                request_id,
                0,
                key.as_u64(),
                format!("shape mismatch: expected {expected:?}, got {got:?}"),
            );
            return Err(ServiceError::ShapeMismatch { expected, got });
        }
        let (tx, rx) = unbounded();
        let enqueued = Instant::now();
        let t_submit_ns = bt_obs::tracer::now_ns();
        bt_obs::flight::record(
            "submit",
            request_id,
            0,
            key.as_u64(),
            format!("r={}", y.r()),
        );
        {
            let mut q = lock(&self.inner.queue);
            if q.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            q.pending.push_back(Pending {
                entry,
                rhs: y.clone(),
                enqueued,
                t_submit_ns,
                request_id,
                tx,
            });
        }
        self.inner.counters.requests.fetch_add(1, Relaxed);
        self.inner.queue_cv.notify_all();
        Ok(SolveTicket {
            rx,
            enqueued,
            request_id,
        })
    }

    /// [`submit`](Self::submit) + [`SolveTicket::wait`]: blocks until
    /// the batched solve completes.
    ///
    /// # Errors
    ///
    /// Union of the submit- and wait-side errors.
    pub fn solve(&self, key: MatrixKey, y: &BlockVec) -> Result<SolveResponse, ServiceError> {
        self.submit(key, y)?.wait()
    }

    /// Whether `key` currently has a cached factorization.
    pub fn contains(&self, key: MatrixKey) -> bool {
        lock(&self.inner.cache).map.contains_key(&key)
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        let (cache_bytes, cached_entries) = {
            let cache = lock(&self.inner.cache);
            (cache.bytes, cache.map.len() as u64)
        };
        ServiceStats {
            cache_hits: c.cache_hits.load(Relaxed),
            cache_misses: c.cache_misses.load(Relaxed),
            evictions: c.evictions.load(Relaxed),
            requests: c.requests.load(Relaxed),
            dispatches: c.dispatches.load(Relaxed),
            dispatched_columns: c.dispatched_columns.load(Relaxed),
            max_batch_width: c.max_batch_width.load(Relaxed),
            ws_trimmed_bytes: c.ws_trimmed_bytes.load(Relaxed),
            cache_bytes,
            cached_entries,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Test hook: marks `key`'s cached factors as lost so the next
    /// dispatched solve against it panics inside the session layer
    /// (exercising the dispatcher's containment path). Returns whether
    /// the key was cached.
    #[doc(hidden)]
    pub fn lose_factors_for_test(&self, key: MatrixKey) -> bool {
        match self.inner.lookup(key) {
            Some(entry) => {
                entry.session.lose_factors_for_test();
                true
            }
            None => false,
        }
    }
}

impl<B: SpmdBackend> Drop for ServiceOn<B> {
    /// Flushes every queued request (none are abandoned), then joins the
    /// dispatcher.
    fn drop(&mut self) {
        lock(&self.inner.queue).shutdown = true;
        self.inner.queue_cv.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl<B: SpmdBackend> Inner<B> {
    /// Cache lookup that refreshes LRU order.
    fn lookup(&self, key: MatrixKey) -> Option<Arc<CacheEntry<B>>> {
        let mut cache = lock(&self.cache);
        cache.seq += 1;
        let seq = cache.seq;
        let slot = cache.map.get_mut(&key)?;
        slot.last_use = seq;
        Some(Arc::clone(&slot.entry))
    }

    /// Inserts a freshly factored entry and evicts LRU entries over
    /// budget. If a racing `register` already inserted the same key, the
    /// existing entry is kept and the newcomer dropped.
    fn insert(&self, entry: Arc<CacheEntry<B>>) {
        let mut cache = lock(&self.cache);
        cache.seq += 1;
        let seq = cache.seq;
        let key = entry.key;
        if !cache.map.contains_key(&key) {
            cache.bytes += entry.bytes;
            cache.map.insert(
                key,
                CacheSlot {
                    entry,
                    last_use: seq,
                },
            );
        } else {
            cache.map.get_mut(&key).expect("just checked").last_use = seq;
        }
        while cache.bytes > self.cfg.cache_bytes && cache.map.len() > 1 {
            let victim = cache
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            if victim == key {
                break; // never evict the entry just inserted/touched
            }
            let slot = cache.map.remove(&victim).expect("victim exists");
            cache.bytes -= slot.entry.bytes;
            self.counters.evictions.fetch_add(1, Relaxed);
            OBS_CACHE_EVICT.incr();
            bt_obs::flight::record(
                "evict",
                0,
                0,
                victim.as_u64(),
                format!("bytes={}", slot.entry.bytes),
            );
            // An in-flight solve may still hold the Arc; the factors are
            // freed when the last pending request against them drains.
        }
        OBS_CACHE_BYTES.set(cache.bytes as f64);
    }
}

/// Dispatcher thread body: pull a flushable batch, solve, respond.
fn dispatcher_loop<B: SpmdBackend>(inner: &Inner<B>) {
    while let Some(batch) = next_batch(inner) {
        dispatch(inner, batch);
    }
}

/// Blocks until some per-matrix group of queued requests is flushable:
/// its width reached `max_batch`, the oldest queued request aged past
/// `max_delay`, or shutdown began (which flushes everything left).
/// Returns `None` only when the queue is empty *and* shut down.
fn next_batch<B: SpmdBackend>(inner: &Inner<B>) -> Option<Vec<Pending<B>>> {
    let mut q = lock(&inner.queue);
    loop {
        if q.pending.is_empty() {
            if q.shutdown {
                return None;
            }
            q = inner
                .queue_cv
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        if let Some(key) = full_group(&q, inner.cfg.max_batch) {
            return Some(extract_group(&mut q, key, inner.cfg.max_batch));
        }
        let oldest = q.pending.front().expect("non-empty queue");
        let deadline = oldest.enqueued + inner.cfg.max_delay;
        let now = Instant::now();
        if q.shutdown || now >= deadline {
            let key = oldest.entry.key;
            return Some(extract_group(&mut q, key, inner.cfg.max_batch));
        }
        let (guard, _) = inner
            .queue_cv
            .wait_timeout(q, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        q = guard;
    }
}

/// First matrix key whose queued requests total at least `max_batch`
/// columns, if any.
fn full_group<B: SpmdBackend>(q: &QueueState<B>, max_batch: usize) -> Option<MatrixKey> {
    let mut widths: HashMap<MatrixKey, usize> = HashMap::new();
    for p in &q.pending {
        let w = widths.entry(p.entry.key).or_insert(0);
        *w += p.rhs.r();
        if *w >= max_batch {
            return Some(p.entry.key);
        }
    }
    None
}

/// Removes the FIFO prefix of `key`'s group, up to `max_batch` columns
/// (a single wider-than-budget request still dispatches alone). Stops at
/// the first same-key request that does not fit, preserving per-matrix
/// FIFO order.
fn extract_group<B: SpmdBackend>(
    q: &mut QueueState<B>,
    key: MatrixKey,
    max_batch: usize,
) -> Vec<Pending<B>> {
    let mut taken = Vec::new();
    let mut width = 0;
    let mut closed = false;
    let mut rest = VecDeque::with_capacity(q.pending.len());
    for p in q.pending.drain(..) {
        let fits = taken.is_empty() || width + p.rhs.r() <= max_batch;
        if p.entry.key == key && !closed && fits {
            width += p.rhs.r();
            taken.push(p);
            closed = width >= max_batch;
        } else {
            closed |= p.entry.key == key;
            rest.push_back(p);
        }
    }
    q.pending = rest;
    taken
}

/// Solves one coalesced batch and distributes results to its tickets.
fn dispatch<B: SpmdBackend>(inner: &Inner<B>, batch: Vec<Pending<B>>) {
    debug_assert!(!batch.is_empty());
    let entry = Arc::clone(&batch[0].entry);
    let key = entry.key.as_u64();
    let widths: Vec<usize> = batch.iter().map(|p| p.rhs.r()).collect();
    let total: usize = widths.iter().sum();
    let dispatched_at = Instant::now();
    let t_dispatch_ns = bt_obs::tracer::now_ns();

    // Identity of this dispatch: one batch id covering every coalesced
    // request. Installed on the dispatcher thread for the whole solve,
    // so assembly, the session replay and every rank's scan spans all
    // carry the request ids (the session hands the context to its rank
    // threads; see `ArdSession::solve_inner`).
    let batch_id = bt_obs::ctx::next_batch_id();
    let request_ids: Vec<u64> = batch.iter().map(|p| p.request_id).collect();
    let ctx = bt_obs::TraceCtx::batch(batch_id, &request_ids);
    let _ctx_guard = bt_obs::ctx::enter(ctx.clone());
    bt_obs::flight::record(
        "dispatch",
        0,
        batch_id,
        key,
        format!("width={total} reqs={}", batch.len()),
    );

    inner.counters.dispatches.fetch_add(1, Relaxed);
    inner
        .counters
        .dispatched_columns
        .fetch_add(total as u64, Relaxed);
    inner
        .counters
        .max_batch_width
        .fetch_max(total as u64, Relaxed);
    OBS_DISPATCHES.incr();
    OBS_BATCH_WIDTH.record(total as u64);
    for p in &batch {
        let wait = dispatched_at.duration_since(p.enqueued);
        OBS_QUEUE_WAIT.record_duration(wait);
        LAT_QUEUE_WAIT.record_duration(wait);
        // Retroactive span covering submit -> dispatch, tagged with the
        // waiting request's own id (not the whole batch).
        bt_obs::complete_span(
            "service",
            "queue.wait",
            p.t_submit_ns,
            t_dispatch_ns,
            Some(&bt_obs::TraceCtx::request(p.request_id)),
            None,
        );
    }

    let span = bt_obs::span_with("service", "batch.dispatch", || {
        format!("{{\"width\":{total},\"key\":\"{:016x}\"}}", key)
    });
    let assemble_start = Instant::now();
    let assemble_span = bt_obs::span("service", "batch.assemble");
    let wide;
    let y = if batch.len() == 1 {
        &batch[0].rhs
    } else {
        wide = hstack(&batch);
        &wide
    };
    drop(assemble_span);
    LAT_BATCH_ASSEMBLE.record_duration(assemble_start.elapsed());

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry.session.solve(y)));
    let solve_time = dispatched_at.elapsed();
    LAT_SOLVE.record_duration(solve_time);
    drop(span);

    match result {
        Ok(Ok(x_wide)) => {
            bt_obs::flight::record("solve_ok", 0, batch_id, key, "");
            let mut parts = if widths.len() == 1 {
                vec![x_wide]
            } else {
                split(&x_wide, &widths)
            };
            for p in batch.into_iter().rev() {
                let x = parts.pop().expect("one part per request");
                let queue_wait = dispatched_at.duration_since(p.enqueued);
                LAT_REQUEST_TOTAL.record_duration(queue_wait + solve_time);
                let _ = p.tx.send(Ok(SolveResponse {
                    x,
                    request_id: p.request_id,
                    batch_id,
                    batch_width: total,
                    queue_wait,
                    solve_time,
                }));
            }
        }
        Ok(Err(e)) => {
            bt_obs::flight::record("solve_error", 0, batch_id, key, e.to_string());
            for p in batch {
                let _ = p.tx.send(Err(ServiceError::Factorization(e.clone())));
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "solve panicked".into());
            bt_obs::flight::record("solve_panic", 0, batch_id, key, msg.clone());
            for p in &batch {
                bt_obs::flight::record("solve_failed", p.request_id, batch_id, key, "");
            }
            // Dump before resolving the tickets, so a caller seeing
            // `SolveFailed` can immediately read the black box.
            if let Some(dir) = &inner.cfg.flight_dump_dir {
                let path = dir.join(format!("bt-flight-batch{batch_id}.json"));
                if let Err(e) = bt_obs::flight::dump_to_file(&path) {
                    eprintln!("bt-service: flight dump to {} failed: {e}", path.display());
                }
            }
            for p in batch {
                let _ = p.tx.send(Err(ServiceError::SolveFailed(msg.clone())));
            }
        }
    }

    if let Some(budget) = inner.cfg.ws_trim_bytes {
        let released = entry.session.trim_workspaces(budget);
        inner.counters.ws_trimmed_bytes.fetch_add(released, Relaxed);
    }
}

/// Stacks the batch's right-hand sides into one `M x total` panel per
/// block row, in batch order.
fn hstack<B: SpmdBackend>(batch: &[Pending<B>]) -> BlockVec {
    let n = batch[0].rhs.n();
    let m = batch[0].rhs.m();
    let total: usize = batch.iter().map(|p| p.rhs.r()).sum();
    let mut wide = BlockVec::zeros(n, m, total);
    for i in 0..n {
        let mut c0 = 0;
        for p in batch {
            wide.blocks[i].set_block(0, c0, &p.rhs.blocks[i]);
            c0 += p.rhs.r();
        }
    }
    wide
}

/// Splits a wide solution panel back into per-request block vectors.
fn split(wide: &BlockVec, widths: &[usize]) -> Vec<BlockVec> {
    let m = wide.m();
    let mut out = Vec::with_capacity(widths.len());
    let mut c0 = 0;
    for &w in widths {
        let blocks = wide
            .blocks
            .iter()
            .map(|panel| panel.block(0, c0, m, w))
            .collect();
        out.push(BlockVec::from_blocks(blocks));
        c0 += w;
    }
    out
}
