//! Affine pairs: the scan element of Phases 2 and 3.
//!
//! A pair `(M, v)` represents the affine map `t -> M t + v`. The forward
//! recurrence `z_i = F_i z_{i-1} + y_i` and the backward recurrence
//! `x_i = G_i x_{i+1} + h_i` are compositions of such maps, and map
//! composition is associative — which is what recursive doubling scans.
//!
//! The key structural fact the *accelerated* algorithm exploits: under
//! composition
//!
//! ```text
//! outer ∘ inner = (M_o M_i,  M_o v_i + v_o)
//! ```
//!
//! the matrix component evolves independently of the vector component.
//! All matrix products can therefore be computed once per coefficient
//! matrix ([`AffinePair::compose`] in setup) and replayed against fresh
//! vectors ([`AffinePair::apply_to_vec`] per right-hand-side batch).

use bt_dense::{gemm, gemm_flops, Element, Mat, Trans};

/// An affine map `t -> mat * t + vec`, with `mat` of shape `M x M` and
/// `vec` of shape `M x R` (`R` = number of simultaneous right-hand sides).
/// Generic over the element type: `f64` by default, `f32` on the
/// mixed-precision solve path (the scan algebra is identical, only the
/// arithmetic width changes).
#[derive(Debug, Clone, PartialEq)]
pub struct AffinePair<E: Element = f64> {
    /// The linear part.
    pub mat: Mat<E>,
    /// The offset panel.
    pub vec: Mat<E>,
}

impl<E: Element> AffinePair<E> {
    /// The identity map with an `M x R` zero offset.
    pub fn identity(m: usize, r: usize) -> Self {
        Self {
            mat: Mat::identity(m),
            vec: Mat::zeros(m, r),
        }
    }

    /// Block order `M`.
    pub fn m(&self) -> usize {
        self.mat.rows()
    }

    /// Panel width `R`.
    pub fn r(&self) -> usize {
        self.vec.cols()
    }

    /// Composition `outer ∘ inner` (apply `inner` first):
    /// `(M_o M_i, M_o v_i + v_o)`.
    ///
    /// Costs `gemm(M,M,M) + gemm(M,M,R)` flops.
    pub fn compose(outer: &AffinePair<E>, inner: &AffinePair<E>) -> AffinePair<E> {
        let m = outer.m();
        let mut mat = Mat::zeros(m, m);
        gemm(
            E::ONE,
            &outer.mat,
            Trans::No,
            &inner.mat,
            Trans::No,
            E::ZERO,
            &mut mat,
        );
        let mut vec = outer.vec.clone();
        gemm(
            E::ONE,
            &outer.mat,
            Trans::No,
            &inner.vec,
            Trans::No,
            E::ONE,
            &mut vec,
        );
        AffinePair { mat, vec }
    }

    /// Vector-only composition for the replay (accelerated) path:
    /// given this pair's stored matrix and vector, computes the composed
    /// vector `mat * inner_vec + vec` — the `O(M^2 R)` part of
    /// [`AffinePair::compose`], skipping the `O(M^3)` matrix product.
    pub fn apply_to_vec(&self, inner_vec: &Mat<E>) -> Mat<E> {
        let mut out = self.vec.clone();
        gemm(
            E::ONE,
            &self.mat,
            Trans::No,
            inner_vec,
            Trans::No,
            E::ONE,
            &mut out,
        );
        out
    }

    /// Flops of [`AffinePair::compose`].
    pub fn compose_flops(m: usize, r: usize) -> u64 {
        gemm_flops(m, m, m) + gemm_flops(m, m, r)
    }

    /// Flops of [`AffinePair::apply_to_vec`].
    pub fn apply_flops(m: usize, r: usize) -> u64 {
        gemm_flops(m, m, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_dense::{matvec, rel_diff};

    fn seq(m: usize, r: usize, s: f64) -> AffinePair {
        AffinePair {
            mat: Mat::from_fn(m, m, |i, j| ((i * m + j) as f64 * 0.7 + s).sin()),
            vec: Mat::from_fn(m, r, |i, j| ((i * r + j) as f64 * 0.3 + s).cos()),
        }
    }

    /// Applies the map to a concrete vector.
    fn apply(p: &AffinePair, t: &[f64]) -> Vec<f64> {
        let mut out = matvec(&p.mat, t);
        for (o, v) in out.iter_mut().zip(p.vec.col(0)) {
            *o += v;
        }
        out
    }

    #[test]
    fn compose_is_function_composition() {
        let a = seq(3, 1, 0.1);
        let b = seq(3, 1, 0.9);
        let t = vec![1.0, -2.0, 0.5];
        let via_compose = apply(&AffinePair::compose(&a, &b), &t);
        let stepwise = apply(&a, &apply(&b, &t));
        for (x, y) in via_compose.iter().zip(&stepwise) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_associative() {
        let (a, b, c) = (seq(4, 2, 0.2), seq(4, 2, 0.5), seq(4, 2, 0.8));
        let left = AffinePair::compose(&AffinePair::compose(&a, &b), &c);
        let right = AffinePair::compose(&a, &AffinePair::compose(&b, &c));
        assert!(rel_diff(&left.mat, &right.mat) < 1e-13);
        assert!(rel_diff(&left.vec, &right.vec) < 1e-12);
    }

    #[test]
    fn identity_neutral() {
        let a = seq(3, 2, 0.4);
        let id = AffinePair::identity(3, 2);
        let l = AffinePair::compose(&a, &id);
        let r = AffinePair::compose(&id, &a);
        assert!(rel_diff(&l.mat, &a.mat) < 1e-14 && rel_diff(&l.vec, &a.vec) < 1e-14);
        assert!(rel_diff(&r.mat, &a.mat) < 1e-14 && rel_diff(&r.vec, &a.vec) < 1e-14);
    }

    #[test]
    fn apply_to_vec_matches_compose_vector_part() {
        let outer = seq(5, 3, 0.3);
        let inner = seq(5, 3, 0.6);
        let full = AffinePair::compose(&outer, &inner);
        let fast = outer.apply_to_vec(&inner.vec);
        assert!(rel_diff(&fast, &full.vec) < 1e-13);
    }

    #[test]
    fn zero_matrix_pair_erases_history() {
        // A pair with M = 0 makes the composition independent of anything
        // applied earlier — this is how the chain is seeded at row 0.
        let seed = AffinePair {
            mat: Mat::zeros(2, 2),
            vec: Mat::filled(2, 1, 7.0),
        };
        let later = seq(2, 1, 0.2);
        let anything = seq(2, 1, 0.9);
        let w1 = AffinePair::compose(&later, &AffinePair::compose(&seed, &anything));
        let w2 = AffinePair::compose(&later, &seed);
        assert!(rel_diff(&w1.vec, &w2.vec) < 1e-13);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(AffinePair::<f64>::compose_flops(4, 2), 128 + 64);
        assert_eq!(AffinePair::<f64>::apply_flops(4, 2), 64);
    }
}
