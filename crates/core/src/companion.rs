//! Companion-matrix (Möbius) machinery for Phase 1 of recursive doubling.
//!
//! The block-LU diagonal recurrence `D_i = B_i - A_i D_{i-1}^{-1} C_{i-1}`
//! does **not** linearize directly (its coefficients multiply `D_{i-1}`
//! from both sides), but the substitution `D_i = C_i Z_i` yields a matrix
//! Möbius recurrence whose coefficients act from the left only:
//!
//! ```text
//! Z_i = (C_i^{-1} B_i · Z_{i-1}  -  C_i^{-1} A_i) · Z_{i-1}^{-1}
//!
//!        | C_i^{-1} B_i   -C_i^{-1} A_i |
//! W_i =  | I               0            |
//! ```
//!
//! Representing `Z_i` in homogeneous coordinates `Z_i = U_i V_i^{-1}`,
//! the state `S_i = [U_i; V_i]` (a `2M x M` panel) evolves by plain
//! matrix products `S_i = W_i S_{i-1}` with `S_0 = [C_0^{-1} B_0; I]` —
//! and matrix products are associative, which is what the cross-rank
//! recursive-doubling scan exploits. The diagonal is recovered as
//! `D_i = C_i U_i V_i^{-1}`.
//!
//! Two standing assumptions of this algorithm family (shared with the
//! paper's BCYCLIC lineage) follow from the formulation:
//!
//! 1. the superdiagonal blocks `C_i` (`i <= N-2`) must be invertible;
//! 2. states/products are only defined up to a scalar (homogeneous
//!    coordinates admit right-multiplication by any invertible factor),
//!    so every operation here renormalizes by the max-abs entry — the
//!    standard guard against the geometric growth of `U_i` overflowing.

use bt_blocktri::BlockRow;
use bt_dense::{
    gemm, gemm_flops, lu_flops, lu_solve_flops, LuFactors, Mat, SingularError, Trans, Workspace,
};

/// The top block row `[C_i^{-1} B_i, -C_i^{-1} A_i]` of a companion
/// matrix `W_i`; the bottom block row is always `[I, 0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompanionW {
    /// `C_i^{-1} B_i`.
    pub p: Mat,
    /// `-C_i^{-1} A_i`.
    pub q: Mat,
}

impl CompanionW {
    /// Builds `W_i` from block row `i >= 1`.
    ///
    /// # Errors
    ///
    /// [`SingularError`] if `C_i` is singular — recursive doubling
    /// requires invertible superdiagonal blocks.
    pub fn from_row(row: &BlockRow) -> Result<Self, SingularError> {
        let c_lu = LuFactors::factor(&row.c)?;
        let p = c_lu.solve(&row.b);
        let mut q = c_lu.solve(&row.a);
        q.negate();
        Ok(Self { p, q })
    }

    /// Flops of [`CompanionW::from_row`] (one LU + two `M`-wide solves).
    pub fn build_flops(m: usize) -> u64 {
        lu_flops(m) + 2 * lu_solve_flops(m, m)
    }
}

/// A `2M x 2M` product of companion matrices `W_j ... W_i`, stored as two
/// `M x 2M` block rows (`top` = rows `0..M`, `bot` = rows `M..2M`),
/// renormalized by a scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct CompanionProduct {
    /// Top `M x 2M` block row.
    pub top: Mat,
    /// Bottom `M x 2M` block row.
    pub bot: Mat,
}

impl CompanionProduct {
    /// Block order `M`.
    pub fn m(&self) -> usize {
        self.top.rows()
    }

    /// The multiplicative identity (`I_{2M}`).
    pub fn identity(m: usize) -> Self {
        let mut top = Mat::zeros(m, 2 * m);
        let mut bot = Mat::zeros(m, 2 * m);
        for k in 0..m {
            top[(k, k)] = 1.0;
            bot[(k, m + k)] = 1.0;
        }
        Self { top, bot }
    }

    /// Divides both rows by the product's max-abs entry (scalar
    /// renormalization; ratios are invariant). No-op for zero or
    /// non-finite scales.
    pub fn renormalize(&mut self) {
        let s = self.top.max_abs().max(self.bot.max_abs());
        if s > 0.0 && s.is_finite() {
            let inv = 1.0 / s;
            self.top.scale(inv);
            self.bot.scale(inv);
        }
    }

    /// Left-multiplies by a companion matrix: `self <- W_i * self`.
    /// Exploits the `[P, Q; I, 0]` structure: the new bottom row is the
    /// old top row.
    ///
    /// Costs `2 * gemm(M, M, 2M)` = `8 M^3` flops.
    pub fn apply_left(&mut self, w: &CompanionW) {
        self.apply_left_ws(w, &mut Workspace::new());
    }

    /// [`CompanionProduct::apply_left`] drawing its temporary from `ws`
    /// — allocation-free when the workspace is warm.
    pub fn apply_left_ws(&mut self, w: &CompanionW, ws: &mut Workspace) {
        let mut new_top = ws.take(self.m(), 2 * self.m());
        gemm(
            1.0,
            &w.p,
            Trans::No,
            &self.top,
            Trans::No,
            0.0,
            &mut new_top,
        );
        gemm(
            1.0,
            &w.q,
            Trans::No,
            &self.bot,
            Trans::No,
            1.0,
            &mut new_top,
        );
        // Rotate: bot <- old top, top <- new product, old bot -> pool.
        std::mem::swap(&mut self.bot, &mut self.top);
        ws.put(std::mem::replace(&mut self.top, new_top));
        self.renormalize();
    }

    /// Dense product `later * self` (both `2M x 2M`), used by the
    /// cross-rank scan where companion structure is lost.
    ///
    /// Costs `2 * gemm(M, 2M, 2M)` = `16 M^3` flops.
    pub fn compose_after(&self, later: &CompanionProduct) -> CompanionProduct {
        let m = self.m();
        let full = Mat::vstack(&self.top, &self.bot);
        let mut top = Mat::zeros(m, 2 * m);
        let mut bot = Mat::zeros(m, 2 * m);
        gemm(1.0, &later.top, Trans::No, &full, Trans::No, 0.0, &mut top);
        gemm(1.0, &later.bot, Trans::No, &full, Trans::No, 0.0, &mut bot);
        let mut out = CompanionProduct { top, bot };
        out.renormalize();
        out
    }

    /// Flops of [`CompanionProduct::apply_left`].
    pub fn apply_left_flops(m: usize) -> u64 {
        2 * gemm_flops(m, m, 2 * m)
    }

    /// Flops of [`CompanionProduct::compose_after`].
    pub fn compose_flops(m: usize) -> u64 {
        2 * gemm_flops(m, 2 * m, 2 * m)
    }
}

/// A `2M x M` homogeneous state `S_i = [U_i; V_i]` with `Z_i = U_i V_i^{-1}`,
/// renormalized by a scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct CompanionState {
    /// `U_i` (numerator).
    pub u: Mat,
    /// `V_i` (denominator).
    pub v: Mat,
}

impl CompanionState {
    /// The initial state `S_0 = [C_0^{-1} B_0; I]`.
    ///
    /// # Errors
    ///
    /// [`SingularError`] if `C_0` is singular.
    pub fn initial(row0: &BlockRow) -> Result<Self, SingularError> {
        let c_lu = LuFactors::factor(&row0.c)?;
        let mut s = Self {
            u: c_lu.solve(&row0.b),
            v: Mat::identity(row0.b.rows()),
        };
        s.renormalize();
        Ok(s)
    }

    /// Flops of [`CompanionState::initial`].
    pub fn initial_flops(m: usize) -> u64 {
        lu_flops(m) + lu_solve_flops(m, m)
    }

    /// Block order `M`.
    pub fn m(&self) -> usize {
        self.u.rows()
    }

    /// Scalar renormalization (ratio-invariant).
    pub fn renormalize(&mut self) {
        let s = self.u.max_abs().max(self.v.max_abs());
        if s > 0.0 && s.is_finite() {
            let inv = 1.0 / s;
            self.u.scale(inv);
            self.v.scale(inv);
        }
    }

    /// Advances the state by one row: `S_i = W_i S_{i-1}`.
    /// Costs `2 * gemm(M, M, M)` = `4 M^3` flops.
    pub fn advance(&mut self, w: &CompanionW) {
        self.advance_ws(w, &mut Workspace::new());
    }

    /// [`CompanionState::advance`] drawing its temporary from `ws` —
    /// allocation-free when the workspace is warm.
    pub fn advance_ws(&mut self, w: &CompanionW, ws: &mut Workspace) {
        let mut new_u = ws.take(self.m(), self.m());
        gemm(1.0, &w.p, Trans::No, &self.u, Trans::No, 0.0, &mut new_u);
        gemm(1.0, &w.q, Trans::No, &self.v, Trans::No, 1.0, &mut new_u);
        std::mem::swap(&mut self.v, &mut self.u);
        ws.put(std::mem::replace(&mut self.u, new_u));
        self.renormalize();
    }

    /// Applies an accumulated product: `S = G * S`. Costs
    /// `2 * gemm(M, 2M, M)` = `8 M^3` flops.
    pub fn apply_product(&mut self, g: &CompanionProduct) {
        self.apply_product_ws(g, &mut Workspace::new());
    }

    /// [`CompanionState::apply_product`] drawing its temporaries from
    /// `ws` — allocation-free when the workspace is warm.
    pub fn apply_product_ws(&mut self, g: &CompanionProduct, ws: &mut Workspace) {
        let m = self.m();
        let mut full = ws.take(2 * m, m);
        full.set_block(0, 0, &self.u);
        full.set_block(m, 0, &self.v);
        let mut u = ws.take(m, m);
        let mut v = ws.take(m, m);
        gemm(1.0, &g.top, Trans::No, &full, Trans::No, 0.0, &mut u);
        gemm(1.0, &g.bot, Trans::No, &full, Trans::No, 0.0, &mut v);
        ws.put(full);
        ws.put(std::mem::replace(&mut self.u, u));
        ws.put(std::mem::replace(&mut self.v, v));
        self.renormalize();
    }

    /// Extracts the block diagonal `D_i = C_i U_i V_i^{-1}` given this
    /// state's row superdiagonal block `C_i` (invariant under the scalar
    /// renormalization).
    ///
    /// # Errors
    ///
    /// [`SingularError`] if the denominator `V_i` is singular, signalling
    /// breakdown of the underlying block LU.
    pub fn extract_diag(&self, c_i: &Mat) -> Result<Mat, SingularError> {
        let lu = LuFactors::factor(&self.v)?;
        let z = lu.solve_transposed_system(&self.u);
        Ok(bt_dense::matmul(c_i, &z))
    }

    /// Flops of [`CompanionState::advance`].
    pub fn advance_flops(m: usize) -> u64 {
        2 * gemm_flops(m, m, m)
    }

    /// Flops of [`CompanionState::apply_product`].
    pub fn apply_product_flops(m: usize) -> u64 {
        2 * gemm_flops(m, 2 * m, m)
    }

    /// Flops of [`CompanionState::extract_diag`] (LU + right division +
    /// final product).
    pub fn extract_flops(m: usize) -> u64 {
        lu_flops(m) + lu_solve_flops(m, m) + gemm_flops(m, m, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, RandomDominant};
    use bt_blocktri::BlockTridiag;
    use bt_dense::rel_diff;

    /// Sequential block-LU diagonals `D_i` computed by the direct (Thomas)
    /// recurrence, for cross-checking the prefix formulation.
    fn thomas_diags(t: &BlockTridiag) -> Vec<Mat> {
        let mut out = Vec::new();
        let mut d_prev: Option<Mat> = None;
        for i in 0..t.n() {
            let row = t.row(i);
            let d = match &d_prev {
                None => row.b.clone(),
                Some(dp) => {
                    let lu = LuFactors::factor(dp).unwrap();
                    let l = lu.solve_transposed_system(&row.a);
                    let mut d = row.b.clone();
                    gemm(-1.0, &l, Trans::No, &t.row(i - 1).c, Trans::No, 1.0, &mut d);
                    d
                }
            };
            out.push(d.clone());
            d_prev = Some(d);
        }
        out
    }

    /// Runs the state recurrence against the Thomas diagonals, returning
    /// the worst relative difference over all rows.
    fn worst_diag_error(t: &bt_blocktri::BlockTridiag) -> f64 {
        let expect = thomas_diags(t);
        let mut state = CompanionState::initial(t.row(0)).unwrap();
        let mut worst = rel_diff(&state.extract_diag(&t.row(0).c).unwrap(), &expect[0]);
        // W_i defined for 1 <= i <= N-2 (C_{N-1} = 0).
        for (i, expected) in expect.iter().enumerate().take(t.n() - 1).skip(1) {
            let w = CompanionW::from_row(t.row(i)).unwrap();
            state.advance(&w);
            let d = state.extract_diag(&t.row(i).c).unwrap();
            worst = worst.max(rel_diff(&d, expected));
        }
        worst
    }

    #[test]
    fn state_recurrence_matches_thomas_diagonals() {
        // Random-dominant systems have per-row spectral spread, so the
        // homogeneous state's conditioning degrades geometrically with N
        // (DESIGN.md §7): accept a modest envelope over 40 rows.
        let t = materialize(&RandomDominant::new(16, 3, 1.3, 17));
        let worst = worst_diag_error(&t);
        assert!(worst < 1e-4, "random dominant worst rel diff {worst}");
    }

    #[test]
    fn state_recurrence_precise_on_clustered_spectra() {
        // Clustered spectra (the paper's application regime): the state
        // stays well conditioned over hundreds of rows.
        use bt_blocktri::gen::ClusteredToeplitz;
        let t = materialize(&ClusteredToeplitz::standard(500, 3, 9));
        let worst = worst_diag_error(&t);
        assert!(worst < 1e-10, "clustered worst rel diff {worst}");
    }

    #[test]
    fn renormalization_keeps_entries_bounded() {
        // Clustered spectra, |Z| ~ d per step: without renormalization the
        // state would overflow around row ~200 (8^200); with it, entries
        // stay in [0, 1] and extraction succeeds after 2000 rows.
        use bt_blocktri::gen::ClusteredToeplitz;
        let src = ClusteredToeplitz::standard(2000, 3, 3);
        let t = materialize(&src);
        let mut state = CompanionState::initial(t.row(0)).unwrap();
        for i in 1..t.n() - 1 {
            let w = CompanionW::from_row(t.row(i)).unwrap();
            state.advance(&w);
            assert!(state.u.all_finite() && state.v.all_finite(), "row {i}");
            assert!(state.u.max_abs().max(state.v.max_abs()) <= 1.0 + 1e-12);
        }
        let d = state.extract_diag(&t.row(t.n() - 2).c).unwrap();
        assert!(d.all_finite());
        // The diagonal converges to a fixed point near B (dominance).
        assert!((d[(0, 0)] - 8.0).abs() < 1.0);
    }

    #[test]
    fn product_identity_is_neutral() {
        let src = RandomDominant::new(3, 3, 1.5, 2);
        let t = materialize(&src);
        let id = CompanionProduct::identity(3);
        let mut st = CompanionState::initial(t.row(0)).unwrap();
        let before = st.clone();
        st.apply_product(&id);
        let c0 = &t.row(0).c;
        assert!(
            rel_diff(
                &st.extract_diag(c0).unwrap(),
                &before.extract_diag(c0).unwrap()
            ) < 1e-14
        );
    }

    #[test]
    fn product_composition_matches_stepwise_states() {
        // Applying the product W_3 W_2 W_1 to S_0 must equal advancing the
        // state three times, checked via the extracted diagonal.
        let src = RandomDominant::new(6, 3, 1.5, 5);
        let t = materialize(&src);

        let mut prod = CompanionProduct::identity(3);
        let mut state = CompanionState::initial(t.row(0)).unwrap();
        for i in 1..4 {
            let w = CompanionW::from_row(t.row(i)).unwrap();
            prod.apply_left(&w);
            state.advance(&w);
        }
        let mut via_product = CompanionState::initial(t.row(0)).unwrap();
        via_product.apply_product(&prod);
        let c3 = &t.row(3).c;
        let d1 = state.extract_diag(c3).unwrap();
        let d2 = via_product.extract_diag(c3).unwrap();
        assert!(
            rel_diff(&d2, &d1) < 1e-11,
            "rel diff {}",
            rel_diff(&d2, &d1)
        );
    }

    #[test]
    fn compose_after_is_associative_on_ratios() {
        let src = RandomDominant::new(7, 2, 1.4, 8);
        let t = materialize(&src);
        let w = |i: usize| {
            let mut p = CompanionProduct::identity(2);
            p.apply_left(&CompanionW::from_row(t.row(i)).unwrap());
            p
        };
        // ((w3 w2) w1) vs (w3 (w2 w1)) acting on S_0.
        let left = w(1).compose_after(&w(2)).compose_after(&w(3));
        let right = w(1).compose_after(&w(2).compose_after(&w(3)));
        let mut s1 = CompanionState::initial(t.row(0)).unwrap();
        let mut s2 = s1.clone();
        s1.apply_product(&left);
        s2.apply_product(&right);
        let c3 = &t.row(3).c;
        let d1 = s1.extract_diag(c3).unwrap();
        let d2 = s2.extract_diag(c3).unwrap();
        assert!(rel_diff(&d1, &d2) < 1e-11);
    }

    #[test]
    fn singular_superdiagonal_rejected() {
        let z = Mat::zeros(2, 2);
        let row = BlockRow::new(Mat::identity(2), Mat::identity(2), z);
        assert!(CompanionW::from_row(&row).is_err());
    }

    #[test]
    fn extract_diag_reports_singular_denominator() {
        let st = CompanionState {
            u: Mat::identity(2),
            v: Mat::zeros(2, 2),
        };
        assert!(st.extract_diag(&Mat::identity(2)).is_err());
    }

    #[test]
    fn flop_formulas_positive() {
        assert_eq!(CompanionProduct::apply_left_flops(4), 2 * 2 * 4 * 4 * 8);
        assert_eq!(CompanionProduct::compose_flops(4), 2 * 2 * 4 * 8 * 8);
        assert_eq!(CompanionState::advance_flops(4), 2 * 2 * 64);
        assert!(CompanionState::extract_flops(4) > 0);
        assert!(CompanionW::build_flops(4) > 0);
    }
}
