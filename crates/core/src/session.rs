//! Persistent solve sessions: factor once, solve whenever.
//!
//! The drivers in [`crate::driver`] run setup and all solves inside one
//! SPMD world, which requires every right-hand side to be known up
//! front. Real applications (implicit time steppers, optimizers) produce
//! right-hand sides one at a time, often *computed from previous
//! solutions*. An [`ArdSession`] holds the per-rank factor state between
//! calls: `create` runs the collective setup once, and each
//! [`ArdSession::solve`] launches a fresh SPMD world that reuses the
//! stored factors — `O(M^2 R (N/P + log P))` per call, no matrix work
//! ever again.
//!
//! The factors are plain `Send` data, so this is entirely safe Rust; the
//! per-call cost beyond the solve itself is the world's thread spawn
//! (tens of microseconds per rank).

use bt_blocktri::{BlockRowSource, BlockVec, FactorError, RowPartition};
use bt_dense::Mat;
use bt_mpsim::{run_spmd, CostModel};
use parking_lot::Mutex;

use crate::state::{ArdRankFactors, BoundaryMode, RankSystem};

/// A reusable accelerated-solver session.
///
/// # Examples
///
/// ```
/// use bt_ard::session::ArdSession;
/// use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
/// use bt_mpsim::CostModel;
///
/// let src = ClusteredToeplitz::standard(48, 4, 1);
/// let session = ArdSession::create(4, CostModel::cluster(), &src).unwrap();
///
/// // Right-hand sides arrive one at a time; each solve reuses the
/// // factors computed in `create`.
/// let t = materialize(&src);
/// let mut y = random_rhs(48, 4, 2, 9);
/// for _ in 0..3 {
///     let x = session.solve(&y).unwrap();
///     assert!(t.rel_residual(&x, &y) < 1e-10);
///     y = x; // feed the solution back in (a crude time stepper)
/// }
/// ```
pub struct ArdSession {
    p: usize,
    n: usize,
    m: usize,
    model: CostModel,
    part: RowPartition,
    /// Per-rank factors and system slices, handed out to worlds on each
    /// solve and returned afterwards.
    state: Mutex<Vec<(RankSystem, ArdRankFactors)>>,
}

impl ArdSession {
    /// Runs the collective setup on `p` ranks and captures the factors.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if setup breaks down.
    ///
    /// # Panics
    ///
    /// Panics if `src.n() < p`.
    pub fn create<S: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        src: &S,
    ) -> Result<Self, FactorError> {
        Self::create_with(p, model, BoundaryMode::ExactScan, src)
    }

    /// [`ArdSession::create`] with an explicit Phase 1 boundary mode.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if setup breaks down.
    pub fn create_with<S: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        boundary: BoundaryMode,
        src: &S,
    ) -> Result<Self, FactorError> {
        let n = src.n();
        let m = src.m();
        assert!(
            n >= p,
            "need at least one block row per rank (N={n}, P={p})"
        );
        let out = run_spmd(
            p,
            model,
            |comm| -> Result<(RankSystem, ArdRankFactors), FactorError> {
                let sys = match boundary {
                    BoundaryMode::ExactScan => RankSystem::from_source(src, p, comm.rank()),
                    BoundaryMode::Windowed(w) => {
                        RankSystem::from_source_windowed(src, p, comm.rank(), w)
                    }
                };
                let factors = ArdRankFactors::setup_with(comm, &sys, true, boundary)?;
                Ok((sys, factors))
            },
        );
        let state: Vec<(RankSystem, ArdRankFactors)> =
            out.results.into_iter().collect::<Result<_, _>>()?;
        Ok(Self {
            p,
            n,
            m,
            model,
            part: RowPartition::new(n, p),
            state: Mutex::new(state),
        })
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Total stored factor bytes across ranks.
    pub fn factor_bytes(&self) -> u64 {
        self.state
            .lock()
            .iter()
            .map(|(_, f)| f.storage_bytes())
            .sum()
    }

    /// Solves one right-hand-side batch with the stored factors.
    ///
    /// # Errors
    ///
    /// Never fails today (the factorization already succeeded); the
    /// `Result` is kept for API stability.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn solve(&self, y: &BlockVec) -> Result<BlockVec, FactorError> {
        Ok(self.solve_inner(y, 0, 0.0)?.0)
    }

    /// Solves with up to `max_sweeps` iterative-refinement sweeps
    /// (stopping at relative residual `tol`); returns the solution and
    /// the residual history (empty when `max_sweeps == 0`).
    ///
    /// # Errors
    ///
    /// Never fails today; kept for API stability.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn solve_refined(
        &self,
        y: &BlockVec,
        max_sweeps: usize,
        tol: f64,
    ) -> Result<(BlockVec, Vec<f64>), FactorError> {
        self.solve_inner(y, max_sweeps, tol)
    }

    fn solve_inner(
        &self,
        y: &BlockVec,
        max_sweeps: usize,
        tol: f64,
    ) -> Result<(BlockVec, Vec<f64>), FactorError> {
        assert_eq!(y.n(), self.n, "rhs block count mismatch");
        assert_eq!(y.m(), self.m, "rhs block order mismatch");
        let mut guard = self.state.lock();
        // Move the per-rank state into the world and take it back after.
        let state: Vec<(RankSystem, ArdRankFactors)> = std::mem::take(&mut *guard);
        let state_slots: Vec<Mutex<Option<(RankSystem, ArdRankFactors)>>> =
            state.into_iter().map(|s| Mutex::new(Some(s))).collect();

        let part = &self.part;
        let out = run_spmd(self.p, self.model, |comm| {
            let (sys, factors) = state_slots[comm.rank()]
                .lock()
                .take()
                .expect("state present");
            let y_local: Vec<Mat> = part
                .range(comm.rank())
                .map(|i| y.blocks[i].clone())
                .collect();
            let (x_local, history) = if max_sweeps == 0 {
                (factors.solve_replay(comm, &y_local), Vec::new())
            } else {
                let refined = factors.solve_replay_refined(comm, &sys, &y_local, max_sweeps, tol);
                (refined.x_local, refined.history)
            };
            *state_slots[comm.rank()].lock() = Some((sys, factors));
            (x_local, history)
        });

        // Return the state to the session.
        *guard = state_slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("state returned"))
            .collect();

        let mut x = BlockVec::zeros(self.n, self.m, y.r());
        let mut history = Vec::new();
        for (rank, (panels, h)) in out.results.into_iter().enumerate() {
            let lo = self.part.range(rank).start;
            for (k, panel) in panels.into_iter().enumerate() {
                x.blocks[lo + k] = panel;
            }
            history = h;
        }
        Ok((x, history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};
    use bt_mpsim::CostModel;

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    #[test]
    fn session_solves_many_batches() {
        let src = ClusteredToeplitz::standard(60, 4, 2);
        let t = materialize(&src);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        assert_eq!(session.ranks(), 4);
        assert!(session.factor_bytes() > 0);
        for seed in 0..5 {
            let y = random_rhs(60, 4, 3, seed);
            let x = session.solve(&y).unwrap();
            assert!(t.rel_residual(&x, &y) < 1e-11, "seed {seed}");
        }
    }

    #[test]
    fn session_matches_driver() {
        let src = ClusteredToeplitz::standard(40, 3, 7);
        let y = vec![random_rhs(40, 3, 2, 1)];
        let driver = crate::driver::ard_solve_dist(4, ZERO, &src, &y).unwrap();
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        let x = session.solve(&y[0]).unwrap();
        assert!(x.rel_diff(&driver.x[0]) < 1e-13);
    }

    #[test]
    fn session_feedback_loop() {
        // Solutions feed back as right-hand sides — impossible with the
        // batch drivers, natural with a session.
        let src = ClusteredToeplitz::standard(32, 3, 4);
        let t = materialize(&src);
        let session = ArdSession::create(3, ZERO, &src).unwrap();
        let mut y = random_rhs(32, 3, 1, 0);
        for step in 0..4 {
            let x = session.solve(&y).unwrap();
            assert!(t.rel_residual(&x, &y) < 1e-11, "step {step}");
            y = x;
        }
    }

    #[test]
    fn session_refinement() {
        let src = Poisson2D::new(28, 5);
        let t = materialize(&src);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        let y = random_rhs(28, 5, 2, 3);
        let (x, history) = session.solve_refined(&y, 6, 1e-13).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-12);
        assert!(!history.is_empty());
    }

    #[test]
    fn windowed_session() {
        let src = Poisson2D::new(200, 4);
        let t = materialize(&src);
        let session = ArdSession::create_with(4, ZERO, BoundaryMode::Windowed(64), &src).unwrap();
        let y = random_rhs(200, 4, 2, 8);
        let x = session.solve(&y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "rhs block count mismatch")]
    fn shape_mismatch_rejected() {
        let src = ClusteredToeplitz::standard(16, 3, 1);
        let session = ArdSession::create(2, ZERO, &src).unwrap();
        let bad = random_rhs(8, 3, 1, 0);
        let _ = session.solve(&bad);
    }
}
