//! Persistent solve sessions: factor once, solve whenever.
//!
//! The drivers in [`crate::driver`] run setup and all solves inside one
//! SPMD world, which requires every right-hand side to be known up
//! front. Real applications (implicit time steppers, optimizers) produce
//! right-hand sides one at a time, often *computed from previous
//! solutions*. An [`ArdSession`] holds the per-rank factor state between
//! calls: `create` runs the collective setup once, and each
//! [`ArdSession::solve`] launches an SPMD world that reuses the stored
//! factors — `O(M^2 R (N/P + log P))` per call, no matrix work ever
//! again.
//!
//! ## Concurrency semantics
//!
//! A session is `Sync`; any number of threads may call
//! [`ArdSession::solve`] concurrently. The per-rank factors exist in one
//! copy, so concurrent solves **queue**: each call checks the factors
//! out under a short lock (microseconds), runs the whole SPMD solve
//! *unlocked*, and returns them through an RAII lease that restores the
//! state — and wakes the next waiter — even if the solve panics. The
//! session's internal lock is therefore never held across a solve, and a
//! panicking solve can never leave the state empty: either every rank's
//! factors come back (the session stays usable) or a rank died holding
//! them, in which case the session enters a terminal *lost* state whose
//! subsequent solves panic with a descriptive message instead of
//! deadlocking. Callers wanting true solve parallelism should batch
//! right-hand sides into one wide panel (see [`crate::service`]) — that
//! is also the faster shape by the paper's `O(R)` amortization argument.
//!
//! ## World reuse
//!
//! By default each solve launches a fresh SPMD world (tens of
//! microseconds of thread spawn per rank). For high-call-rate use —
//! thousands of small replay solves per second through a
//! [`crate::service::SolverService`] — [`ArdSession::set_world_reuse`]
//! keeps a persistent [`bt_mpsim::SpmdWorld`] alive between calls, removing the
//! spawn cost from every solve. Results are identical either way.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use bt_blocktri::{BlockRowSource, BlockVec, FactorError, RowPartition};
use bt_comm::{CommBackend, CostModel, PersistentWorld, SpmdBackend, SpmdOutput};
use bt_dense::Mat;
use bt_mpsim::SimBackend;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::mixed::{MixedRankFactors, Precision};
use crate::state::{ArdRankFactors, BoundaryMode, RankSystem};

/// A rank's factor state: the classic full-precision factors, or the
/// precision-adaptive mixed set (`f32` + refinement, with its own
/// gray-zone fallback to `f64`).
enum SessionFactors {
    Plain(ArdRankFactors),
    Mixed(MixedRankFactors),
}

impl SessionFactors {
    fn storage_bytes(&self) -> u64 {
        match self {
            SessionFactors::Plain(f) => f.storage_bytes(),
            SessionFactors::Mixed(f) => f.storage_bytes(),
        }
    }

    fn trim_workspace(&self, max_pooled_bytes: u64) -> u64 {
        match self {
            SessionFactors::Plain(f) => f.trim_workspace(max_pooled_bytes),
            SessionFactors::Mixed(f) => f.trim_workspace(max_pooled_bytes),
        }
    }
}

/// Per-rank state checked out by a solve: the rank's system slice and
/// its recorded factors.
type RankState = (RankSystem, SessionFactors);

/// The factor store a session guards.
enum FactorStore {
    /// Factors at rest; a solve may check them out.
    Available(Vec<RankState>),
    /// A solve is running with the factors.
    CheckedOut,
    /// A panicked solve took a rank's factors down with it; the session
    /// is permanently unusable (but callers get a message, not a hang).
    Lost,
}

/// A reusable accelerated-solver session.
///
/// # Examples
///
/// ```
/// use bt_ard::session::ArdSession;
/// use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
/// use bt_mpsim::CostModel;
///
/// let src = ClusteredToeplitz::standard(48, 4, 1);
/// let session = ArdSession::create(4, CostModel::cluster(), &src).unwrap();
///
/// // Right-hand sides arrive one at a time; each solve reuses the
/// // factors computed in `create`.
/// let t = materialize(&src);
/// let mut y = random_rhs(48, 4, 2, 9);
/// for _ in 0..3 {
///     let x = session.solve(&y).unwrap();
///     assert!(t.rel_residual(&x, &y) < 1e-10);
///     y = x; // feed the solution back in (a crude time stepper)
/// }
/// ```
pub struct ArdSessionOn<B: SpmdBackend> {
    p: usize,
    n: usize,
    m: usize,
    model: CostModel,
    part: RowPartition,
    /// Total stored factor bytes, captured at creation (so the getter
    /// never has to touch the factor lock).
    factor_bytes: u64,
    /// Element type the factors were stored at (identical on all ranks;
    /// `F64` for classic sessions, the gate's decision for mixed ones).
    precision: Precision,
    /// Per-rank factors, handed out to worlds on each solve and returned
    /// afterwards. Held only for checkout/restore — never across a solve.
    state: Mutex<FactorStore>,
    /// Wakes solves queued behind a checked-out store.
    state_cv: Condvar,
    /// When world reuse is on, the persistent world (built lazily).
    world: Mutex<Option<B::World>>,
    world_reuse: AtomicBool,
}

/// The session on the default virtual-clock simulator backend — the
/// spelling almost all code uses; the generic [`ArdSessionOn`] exists
/// so the same factor-lease machinery can drive any [`SpmdBackend`]
/// (e.g. `bt_shm::ShmBackend` for wall-clock serving).
pub type ArdSession = ArdSessionOn<SimBackend>;

/// RAII checkout of a session's per-rank factors.
///
/// Holds the state as `Arc`'d per-rank slots so an SPMD world (possibly
/// a persistent one requiring `'static` jobs) can take and return each
/// rank's share. On drop — **including unwinds** — whatever came back is
/// restored to the session and waiters are notified; if any rank's
/// factors were destroyed mid-solve the store transitions to
/// [`FactorStore::Lost`] instead of silently shrinking.
struct FactorLease<'a, B: SpmdBackend> {
    session: &'a ArdSessionOn<B>,
    slots: Option<Arc<Vec<parking_lot::Mutex<Option<RankState>>>>>,
}

impl<'a, B: SpmdBackend> FactorLease<'a, B> {
    /// Blocks until the factors are available, then checks them out.
    ///
    /// # Panics
    ///
    /// Panics if an earlier solve lost the factors.
    fn checkout(session: &'a ArdSessionOn<B>) -> Self {
        let mut guard = session
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            match &*guard {
                FactorStore::Available(_) => break,
                FactorStore::CheckedOut => {
                    guard = session
                        .state_cv
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                FactorStore::Lost => panic!(
                    "ArdSession factors were lost by an earlier panicked solve; \
                     recreate the session"
                ),
            }
        }
        let state = match std::mem::replace(&mut *guard, FactorStore::CheckedOut) {
            FactorStore::Available(state) => state,
            _ => unreachable!("loop above exits only on Available"),
        };
        drop(guard);
        let slots: Vec<parking_lot::Mutex<Option<RankState>>> = state
            .into_iter()
            .map(|s| parking_lot::Mutex::new(Some(s)))
            .collect();
        Self {
            session,
            slots: Some(Arc::new(slots)),
        }
    }

    /// The per-rank slots, for handing to an SPMD world.
    fn slots(&self) -> &Arc<Vec<parking_lot::Mutex<Option<RankState>>>> {
        self.slots.as_ref().expect("slots present until drop")
    }
}

impl<B: SpmdBackend> Drop for FactorLease<'_, B> {
    fn drop(&mut self) {
        let slots = self.slots.take().expect("dropped once");
        // All world jobs have completed (run_spmd/SpmdWorld::run join all
        // ranks before returning, even when propagating a panic), so this
        // lease holds the only reference — unless a rank died between
        // taking its slot and restoring it, in which case its factors are
        // gone and the session is lost.
        let restored: Option<Vec<RankState>> = Arc::try_unwrap(slots)
            .ok()
            .map(|v| v.into_iter().map(parking_lot::Mutex::into_inner).collect())
            .and_then(|v: Vec<Option<RankState>>| v.into_iter().collect());
        let mut guard = self
            .session
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = match restored {
            Some(state) if state.len() == self.session.p => FactorStore::Available(state),
            _ => FactorStore::Lost,
        };
        drop(guard);
        self.session.state_cv.notify_all();
    }
}

impl<B: SpmdBackend> ArdSessionOn<B> {
    /// Runs the collective setup on `p` ranks and captures the factors.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if setup breaks down.
    ///
    /// # Panics
    ///
    /// Panics if `src.n() < p`.
    pub fn create<S: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        src: &S,
    ) -> Result<Self, FactorError> {
        Self::create_with(p, model, BoundaryMode::ExactScan, src)
    }

    /// [`ArdSession::create`] with an explicit Phase 1 boundary mode.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if setup breaks down.
    pub fn create_with<S: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        boundary: BoundaryMode,
        src: &S,
    ) -> Result<Self, FactorError> {
        Self::create_impl(p, model, boundary, src, move |comm, sys| {
            Ok(SessionFactors::Plain(ArdRankFactors::setup_with(
                comm, sys, true, boundary,
            )?))
        })
    }

    /// [`ArdSession::create`] through the precision-adaptive mixed path:
    /// factors are stored in `f32` (half the bytes, half the replay wire
    /// volume, wide-SIMD kernels) when the gray-zone gate allows it, and
    /// transparently in `f64` when it does not (see [`crate::mixed`]).
    /// Every solve through a mixed session runs `f64` iterative
    /// refinement, so final residuals match the classic session's;
    /// [`ArdSessionOn::precision`] reports the gate's decision.
    ///
    /// # Errors
    ///
    /// [`FactorError`] if even the `f64` fallback factorization breaks
    /// down.
    ///
    /// # Panics
    ///
    /// Panics if `src.n() < p`.
    pub fn create_mixed<S: BlockRowSource + Sync>(
        p: usize,
        model: CostModel,
        src: &S,
    ) -> Result<Self, FactorError> {
        Self::create_impl(p, model, BoundaryMode::ExactScan, src, |comm, sys| {
            Ok(SessionFactors::Mixed(MixedRankFactors::setup(comm, sys)?))
        })
    }

    fn create_impl<S, F>(
        p: usize,
        model: CostModel,
        boundary: BoundaryMode,
        src: &S,
        factor: F,
    ) -> Result<Self, FactorError>
    where
        S: BlockRowSource + Sync,
        F: Fn(&mut B::Comm, &RankSystem) -> Result<SessionFactors, FactorError> + Send + Sync,
    {
        let n = src.n();
        let m = src.m();
        assert!(
            n >= p,
            "need at least one block row per rank (N={n}, P={p})"
        );
        let out = B::run(p, model, |comm| -> Result<RankState, FactorError> {
            let sys = match boundary {
                BoundaryMode::ExactScan => RankSystem::from_source(src, p, comm.rank()),
                BoundaryMode::Windowed(w) => {
                    RankSystem::from_source_windowed(src, p, comm.rank(), w)
                }
            };
            let factors = factor(comm, &sys)?;
            Ok((sys, factors))
        });
        let state: Vec<RankState> = out.results.into_iter().collect::<Result<_, _>>()?;
        // The gray-zone gate's decision is derived from allreduced
        // quantities, so every rank agrees; rank 0 speaks for all.
        let precision = match &state[0].1 {
            SessionFactors::Plain(_) => Precision::F64,
            SessionFactors::Mixed(f) => f.precision(),
        };
        let factor_bytes = state.iter().map(|(_, f)| f.storage_bytes()).sum();
        Ok(Self {
            p,
            n,
            m,
            model,
            part: RowPartition::new(n, p),
            factor_bytes,
            precision,
            state: Mutex::new(FactorStore::Available(state)),
            state_cv: Condvar::new(),
            world: Mutex::new(None),
            world_reuse: AtomicBool::new(false),
        })
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Number of block rows `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block order `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The cost model solves run under.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Total stored factor bytes across ranks (captured at creation).
    pub fn factor_bytes(&self) -> u64 {
        self.factor_bytes
    }

    /// Element type the stored factors use: [`Precision::F64`] for
    /// classic sessions, and for [`ArdSessionOn::create_mixed`] sessions
    /// the gray-zone gate's decision (`F32` fast path, or `F64` when the
    /// system's conditioning forced the fallback).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Switches persistent-world reuse on or off. When on, solves run on
    /// a lazily built, long-lived [`bt_mpsim::SpmdWorld`] instead of spawning `P`
    /// threads per call; when switched off, any persistent world is torn
    /// down. Results are identical either way.
    pub fn set_world_reuse(&self, on: bool) {
        self.world_reuse.store(on, Ordering::Relaxed);
        if !on {
            *self
                .world
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
    }

    /// Test hook: marks the factors as lost, exactly as if an earlier
    /// solve had panicked mid-flight with the factors checked out. The
    /// next solve panics loudly (see the module docs). Used by the
    /// service layer's panic-containment regression tests.
    #[doc(hidden)]
    pub fn lose_factors_for_test(&self) {
        *self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = FactorStore::Lost;
        self.state_cv.notify_all();
    }

    /// Trims each rank's pooled solve workspace to at most
    /// `per_rank_pooled_bytes` (largest buffers dropped first), returning
    /// the total bytes released. Waits for any in-flight solve, so the
    /// pool high-water mark of one oversized batch does not stay pinned
    /// for the life of the session. See [`bt_dense::Workspace::trim_to`].
    pub fn trim_workspaces(&self, per_rank_pooled_bytes: u64) -> u64 {
        let lease = FactorLease::checkout(self);
        let trimmed = lease
            .slots()
            .iter()
            .map(|slot| {
                slot.lock()
                    .as_ref()
                    .map_or(0, |(_, f)| f.trim_workspace(per_rank_pooled_bytes))
            })
            .sum();
        drop(lease);
        trimmed
    }

    /// Solves one right-hand-side batch with the stored factors.
    ///
    /// # Errors
    ///
    /// Never fails today (the factorization already succeeded); the
    /// `Result` is kept for API stability.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, or if an earlier panicked solve lost
    /// the factors (see the module docs on concurrency).
    pub fn solve(&self, y: &BlockVec) -> Result<BlockVec, FactorError> {
        Ok(self.solve_inner(y, 0, 0.0)?.0)
    }

    /// Solves with up to `max_sweeps` iterative-refinement sweeps
    /// (stopping at relative residual `tol`); returns the solution and
    /// the residual history (empty when `max_sweeps == 0`).
    ///
    /// # Errors
    ///
    /// Never fails today; kept for API stability.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ArdSession::solve`].
    pub fn solve_refined(
        &self,
        y: &BlockVec,
        max_sweeps: usize,
        tol: f64,
    ) -> Result<(BlockVec, Vec<f64>), FactorError> {
        self.solve_inner(y, max_sweeps, tol)
    }

    fn solve_inner(
        &self,
        y: &BlockVec,
        max_sweeps: usize,
        tol: f64,
    ) -> Result<(BlockVec, Vec<f64>), FactorError> {
        assert_eq!(y.n(), self.n, "rhs block count mismatch");
        assert_eq!(y.m(), self.m, "rhs block order mismatch");

        // Pre-slice the right-hand side per rank (one copy, same as the
        // per-rank clones the world used to make) so the job closure can
        // be `'static` for a persistent world.
        let y_slices: Arc<Vec<parking_lot::Mutex<Option<Vec<Mat>>>>> = Arc::new(
            (0..self.p)
                .map(|rank| {
                    parking_lot::Mutex::new(Some(
                        self.part.range(rank).map(|i| y.blocks[i].clone()).collect(),
                    ))
                })
                .collect(),
        );

        // Short lock: factors leave the session here and come back when
        // `lease` drops — even if the solve below unwinds.
        let lease = FactorLease::checkout(self);
        let slots = Arc::clone(lease.slots());

        // The caller's trace context (e.g. the service dispatcher's
        // batch/request ids) does not cross thread spawns by itself;
        // carry it into each rank's closure so per-rank replay and scan
        // spans stay attributable to the requests they serve.
        let ctx = bt_obs::ctx::current();
        let job = move |comm: &mut B::Comm| {
            let _ctx_guard = ctx.clone().map(bt_obs::ctx::enter);
            let _span = bt_obs::span("session", "replay.solve");
            let (sys, factors) = slots[comm.rank()].lock().take().expect("state present");
            let y_local: Vec<Mat> = y_slices[comm.rank()]
                .lock()
                .take()
                .expect("rhs slice present");
            let (x_local, history) = match &factors {
                SessionFactors::Plain(f) => {
                    if max_sweeps == 0 {
                        (f.solve_replay(comm, &y_local), Vec::new())
                    } else {
                        let refined = f.solve_replay_refined(comm, &sys, &y_local, max_sweeps, tol);
                        (refined.x_local, refined.history)
                    }
                }
                SessionFactors::Mixed(f) => {
                    // Mixed factors always refine: `f32` replay error
                    // must be corrected in `f64` before anyone sees the
                    // answer, so a plain `solve` gets the defaults.
                    let (sweeps, tol) = if max_sweeps == 0 {
                        (
                            crate::mixed::MIXED_DEFAULT_SWEEPS,
                            crate::mixed::MIXED_DEFAULT_TOL,
                        )
                    } else {
                        (max_sweeps, tol)
                    };
                    let refined = f.solve_refined(comm, &sys, &y_local, sweeps, tol);
                    (refined.x_local, refined.history)
                }
            };
            *slots[comm.rank()].lock() = Some((sys, factors));
            (x_local, history)
        };

        let out = self.run_world(job);
        drop(lease); // factors restored; waiters wake

        let mut x = BlockVec::zeros(self.n, self.m, y.r());
        let mut history = Vec::new();
        for (rank, (panels, h)) in out.results.into_iter().enumerate() {
            let lo = self.part.range(rank).start;
            for (k, panel) in panels.into_iter().enumerate() {
                x.blocks[lo + k] = panel;
            }
            history = h;
        }
        Ok((x, history))
    }

    /// Runs `job` on the persistent world when reuse is on (rebuilding a
    /// dead one is pointless — a panic loses factors anyway), else on a
    /// fresh `run_spmd` world.
    fn run_world<T, F>(&self, job: F) -> SpmdOutput<T>
    where
        T: Send + 'static,
        F: Fn(&mut B::Comm) -> T + Send + Sync + 'static,
    {
        if self.world_reuse.load(Ordering::Relaxed) {
            let mut wg = self
                .world
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let world = wg.get_or_insert_with(|| B::world(self.p, self.model));
            let out = catch_unwind(AssertUnwindSafe(|| world.run(job)));
            match out {
                Ok(out) => out,
                Err(e) => {
                    // The world is dead; drop it so a future session user
                    // (after recreating factors) does not trip over it.
                    *wg = None;
                    drop(wg);
                    resume_unwind(e);
                }
            }
        } else {
            B::run(self.p, self.model, job)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};
    use bt_mpsim::CostModel;

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    #[test]
    fn session_solves_many_batches() {
        let src = ClusteredToeplitz::standard(60, 4, 2);
        let t = materialize(&src);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        assert_eq!(session.ranks(), 4);
        assert_eq!((session.n(), session.m()), (60, 4));
        assert!(session.factor_bytes() > 0);
        for seed in 0..5 {
            let y = random_rhs(60, 4, 3, seed);
            let x = session.solve(&y).unwrap();
            assert!(t.rel_residual(&x, &y) < 1e-11, "seed {seed}");
        }
    }

    #[test]
    fn session_matches_driver() {
        let src = ClusteredToeplitz::standard(40, 3, 7);
        let y = vec![random_rhs(40, 3, 2, 1)];
        let driver = crate::driver::ard_solve_dist(4, ZERO, &src, &y).unwrap();
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        let x = session.solve(&y[0]).unwrap();
        assert!(x.rel_diff(&driver.x[0]) < 1e-13);
    }

    #[test]
    fn session_feedback_loop() {
        // Solutions feed back as right-hand sides — impossible with the
        // batch drivers, natural with a session.
        let src = ClusteredToeplitz::standard(32, 3, 4);
        let t = materialize(&src);
        let session = ArdSession::create(3, ZERO, &src).unwrap();
        let mut y = random_rhs(32, 3, 1, 0);
        for step in 0..4 {
            let x = session.solve(&y).unwrap();
            assert!(t.rel_residual(&x, &y) < 1e-11, "step {step}");
            y = x;
        }
    }

    #[test]
    fn session_refinement() {
        let src = Poisson2D::new(28, 5);
        let t = materialize(&src);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        let y = random_rhs(28, 5, 2, 3);
        let (x, history) = session.solve_refined(&y, 6, 1e-13).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-12);
        assert!(!history.is_empty());
    }

    #[test]
    fn windowed_session() {
        let src = Poisson2D::new(200, 4);
        let t = materialize(&src);
        let session = ArdSession::create_with(4, ZERO, BoundaryMode::Windowed(64), &src).unwrap();
        let y = random_rhs(200, 4, 2, 8);
        let x = session.solve(&y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "rhs block count mismatch")]
    fn shape_mismatch_rejected() {
        let src = ClusteredToeplitz::standard(16, 3, 1);
        let session = ArdSession::create(2, ZERO, &src).unwrap();
        let bad = random_rhs(8, 3, 1, 0);
        let _ = session.solve(&bad);
    }

    #[test]
    fn concurrent_solves_from_two_threads() {
        // Regression for the lock-across-the-solve bug: concurrent
        // callers queue on the factor checkout (short lock + condvar),
        // not on a mutex held for the whole SPMD solve, and both get
        // correct answers.
        let src = ClusteredToeplitz::standard(48, 4, 11);
        let t = materialize(&src);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|tid| {
                    let session = &session;
                    let t = &t;
                    scope.spawn(move || {
                        for round in 0..4 {
                            let y = random_rhs(48, 4, 2, 100 * tid + round);
                            let x = session.solve(&y).unwrap();
                            assert!(t.rel_residual(&x, &y) < 1e-11, "thread {tid} round {round}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // The session is still healthy afterwards.
        let y = random_rhs(48, 4, 1, 999);
        assert!(t.rel_residual(&session.solve(&y).unwrap(), &y) < 1e-11);
    }

    #[test]
    fn concurrent_solves_with_world_reuse() {
        let src = ClusteredToeplitz::standard(36, 3, 5);
        let t = materialize(&src);
        let session = ArdSession::create(3, ZERO, &src).unwrap();
        session.set_world_reuse(true);
        std::thread::scope(|scope| {
            for tid in 0..3 {
                let (session, t) = (&session, &t);
                scope.spawn(move || {
                    for round in 0..3 {
                        let y = random_rhs(36, 3, 1, 7 * tid + round);
                        let x = session.solve(&y).unwrap();
                        assert!(t.rel_residual(&x, &y) < 1e-11);
                    }
                });
            }
        });
        session.set_world_reuse(false); // tears the world down cleanly
        let y = random_rhs(36, 3, 1, 42);
        assert!(t.rel_residual(&session.solve(&y).unwrap(), &y) < 1e-11);
    }

    #[test]
    fn world_reuse_matches_fresh_worlds() {
        let src = ClusteredToeplitz::standard(40, 4, 3);
        let session = ArdSession::create(4, ZERO, &src).unwrap();
        let y = random_rhs(40, 4, 5, 17);
        let fresh = session.solve(&y).unwrap();
        session.set_world_reuse(true);
        let reused = session.solve(&y).unwrap();
        assert_eq!(fresh, reused, "world reuse must not change results");
    }

    #[test]
    fn lease_restores_factors_on_unwind() {
        // A panic between checkout and restore must put the factors back
        // (RAII), so the next solve succeeds instead of hanging or
        // finding an empty state.
        let src = ClusteredToeplitz::standard(24, 3, 9);
        let t = materialize(&src);
        let session = ArdSession::create(2, ZERO, &src).unwrap();
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _lease = FactorLease::checkout(&session);
            panic!("simulated failure while the factors are checked out");
        }));
        assert!(unwound.is_err());
        let y = random_rhs(24, 3, 2, 0);
        let x = session.solve(&y).unwrap();
        assert!(t.rel_residual(&x, &y) < 1e-11, "factors were not restored");
    }

    #[test]
    fn lost_factors_fail_loudly_not_silently() {
        // If a rank's factors are destroyed while checked out (a panic
        // inside the SPMD solve), later solves must panic with a clear
        // message — not deadlock on the condvar or see an empty vec.
        let src = ClusteredToeplitz::standard(16, 3, 1);
        let session = ArdSession::create(2, ZERO, &src).unwrap();
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let lease = FactorLease::checkout(&session);
            lease.slots()[0].lock().take(); // rank 0's factors die with the "world"
            panic!("simulated mid-solve rank death");
        }));
        assert!(unwound.is_err());
        let y = random_rhs(16, 3, 1, 0);
        let next = std::panic::catch_unwind(AssertUnwindSafe(|| session.solve(&y)));
        let payload = next.expect_err("lost factors must not look healthy");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or(payload.downcast_ref::<String>().map(String::as_str))
            .expect("string payload");
        assert!(msg.contains("lost"), "got: {msg}");
    }
}
