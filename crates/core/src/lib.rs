//! # bt-ard: (accelerated) recursive doubling for block tridiagonal systems
//!
//! Reproduction of S. Seal, *"An Accelerated Recursive Doubling Algorithm
//! for Block Tridiagonal Systems"*, IPDPS 2014. Given a block tridiagonal
//! system with `N` block rows of order `M` on `P` ranks:
//!
//! * **Classic recursive doubling (RD)** solves one right-hand-side batch
//!   in `O(M^3 (N/P + log P))` — a prefix computation over companion
//!   matrices (Phase 1) and affine maps (Phases 2/3).
//! * **Accelerated recursive doubling (ARD)** — the paper's contribution —
//!   observes that *all* matrix-dependent scan work is independent of the
//!   right-hand sides. One `O(M^3 (N/P + log P))` [`setup`] stores the
//!   block-diagonal factorizations, local prefix matrices and the
//!   cross-rank scan matrices; each of the `R` subsequent solves then
//!   costs only `O(M^2 R (N/P + log P))` and ships `M x R` panels instead
//!   of `M x M` matrices. Over `R` right-hand sides this is an `O(R)`
//!   improvement (saturating at `O(M)`), with `R ~ 10^2..10^4` in the
//!   paper's applications.
//!
//! [`setup`]: state::ArdRankFactors::setup
//!
//! ## Module map
//!
//! * [`companion`] — Phase 1 machinery: renormalized companion/Möbius
//!   products and states;
//! * [`pairs`] — the affine scan element of Phases 2/3;
//! * [`scans`] — cross-rank Kogge-Stone scans (fresh / recorded / replay);
//! * [`state`] — rank-level setup/solve (the library's core API);
//! * [`driver`] — whole-run drivers over the `bt-mpsim` runtime;
//! * [`complexity`] — the paper's cost model with this implementation's
//!   constants, validated against measured counters.
//!
//! ## Quick example
//!
//! ```
//! use bt_ard::driver::ard_solve_dist;
//! use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
//! use bt_mpsim::CostModel;
//!
//! let src = ClusteredToeplitz::standard(64, 4, 42); // N=64 rows, 4x4 blocks
//! let batches: Vec<_> = (0..3).map(|s| random_rhs(64, 4, 8, s)).collect();
//! let out = ard_solve_dist(4, CostModel::cluster(), &src, &batches).unwrap();
//!
//! let t = materialize(&src);
//! for (x, y) in out.x.iter().zip(&batches) {
//!     assert!(t.rel_residual(x, y) < 1e-10);
//! }
//! ```

pub mod auto;
pub mod companion;
pub mod complexity;
pub mod driver;
pub mod mixed;
pub mod pairs;
pub mod pcr;
pub mod refine;
pub mod scans;
pub mod service;
pub mod session;
pub mod solver;
pub mod spike;
pub mod state;

pub use auto::{auto_solve, AutoOutcome, Chosen};
pub use driver::{
    ard_solve_cfg, ard_solve_cfg_on, ard_solve_dist, pcr_solve_cfg, pcr_solve_cfg_on, rd_solve_cfg,
    rd_solve_dist, spike_solve_cfg, BackendKind, DistOutcome, DriverConfig, PhaseTimings,
};
pub use mixed::{MixedRankFactors, Precision, MIXED_COND_MAX};
pub use pcr::PcrRankFactors;
pub use refine::{ard_solve_refined, RefinedSolve};
pub use service::{
    MatrixKey, ServiceConfig, ServiceError, ServiceOn, ServiceStats, SolveResponse, SolveTicket,
    SolverService,
};
pub use session::{ArdSession, ArdSessionOn};
pub use solver::{PcrSession, RankSolver, Session, SpikeSession};
pub use spike::SpikeRankFactors;
pub use state::{rd_solve_rank, ArdRankFactors, BoundaryMode, RankSystem};
