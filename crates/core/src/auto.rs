//! Automatic strategy selection: solve with the paper's algorithm when
//! it is safe, escalate when it is not.
//!
//! The exact-scan prefix method is the cheapest per solve but has a
//! conditioning envelope (DESIGN.md §7); the windowed mode is exact for
//! contracting systems; amortized parallel cyclic reduction works for
//! anything with invertible level diagonals. [`auto_solve`] chains them:
//!
//! 1. run the accelerated exact scan; accept if the measured boundary
//!    condition estimate says full precision
//!    ([`ArdRankFactors::boundary_condition`](crate::state::ArdRankFactors::boundary_condition)
//!    below [`COND_ACCEPT`]);
//! 2. otherwise (degraded, broken down, or singular superdiagonals) run
//!    the windowed mode and *verify* its residual against the
//!    materialized matrix;
//! 3. otherwise fall back to parallel cyclic reduction.
//!
//! The returned [`AutoOutcome`] reports which strategy won and why, so
//! callers can pin it for subsequent batches.

use bt_blocktri::{BlockRowSource, BlockTridiag, BlockVec, FactorError};
use bt_mpsim::CostModel;

use crate::driver::{ard_solve_cfg, pcr_solve_cfg, DistOutcome, DriverConfig};
use crate::mixed::{Precision, MIXED_COND_MAX};
use crate::state::BoundaryMode;

/// Boundary condition estimates below this accept the exact scan
/// (extraction error ~ `eps * cond` stays below ~1e-8).
pub const COND_ACCEPT: f64 = 1e8;

/// Residual threshold for accepting the windowed mode's verification.
pub const RESIDUAL_ACCEPT: f64 = 1e-9;

/// Window length used by the escalation step.
pub const WINDOW: usize = 64;

/// Precision the mixed solve path should factor at, given a measured
/// boundary condition estimate: `f32` factors plus `f64` refinement
/// inside the gray-zone gate ([`MIXED_COND_MAX`]), full `f64` outside
/// it. This is the same gate [`crate::mixed::MixedRankFactors`] applies
/// at setup; exposed here so callers that already ran the `f64` ladder
/// can pin the cheaper precision for subsequent batches without a trial
/// factorization.
pub fn choose_precision(boundary_condition: f64) -> Precision {
    if boundary_condition.is_finite() && boundary_condition <= MIXED_COND_MAX {
        Precision::F32
    } else {
        Precision::F64
    }
}

/// Which strategy [`auto_solve`] ended up using.
#[derive(Debug, Clone, PartialEq)]
pub enum Chosen {
    /// The paper's exact-scan accelerated algorithm, at full precision.
    ExactScan {
        /// Measured boundary condition estimate.
        boundary_condition: f64,
        /// Precision the mixed path would factor this system at
        /// ([`choose_precision`] of the measured estimate): `F32` means
        /// subsequent batches can ride the half-width replay +
        /// refinement path at equal final residual.
        precision: Precision,
    },
    /// Windowed boundary recovery (verified by residual).
    Windowed {
        /// Why the exact scan was rejected.
        reason: String,
        /// Verified relative residual of the first batch.
        residual: f64,
    },
    /// Parallel cyclic reduction (the robust fallback).
    Pcr {
        /// Why the windowed mode was rejected.
        reason: String,
    },
}

/// Result of an automatic solve.
#[derive(Debug)]
pub struct AutoOutcome {
    /// The winning strategy and its evidence.
    pub chosen: Chosen,
    /// The solve outcome (solutions, stats, timings).
    pub outcome: DistOutcome,
}

/// Solves `batches` with the cheapest strategy that is numerically safe
/// for this system. See the module docs for the escalation ladder.
///
/// # Errors
///
/// [`FactorError`] if even parallel cyclic reduction breaks down (a
/// singular level diagonal).
///
/// # Panics
///
/// Panics if `batches` is empty, shapes are inconsistent, or `N < P`.
pub fn auto_solve<S: BlockRowSource + Sync>(
    p: usize,
    model: CostModel,
    src: &S,
    batches: &[BlockVec],
) -> Result<AutoOutcome, FactorError> {
    // 1. Exact scan.
    let exact_cfg = DriverConfig::new(p).with_model(model);
    let exact_reject = match ard_solve_cfg(&exact_cfg, src, batches) {
        Ok(outcome) if outcome.boundary_condition < COND_ACCEPT => {
            return Ok(AutoOutcome {
                chosen: Chosen::ExactScan {
                    boundary_condition: outcome.boundary_condition,
                    precision: choose_precision(outcome.boundary_condition),
                },
                outcome,
            });
        }
        Ok(outcome) => format!(
            "boundary condition estimate {:.1e} exceeds {COND_ACCEPT:.0e}",
            outcome.boundary_condition
        ),
        Err(e) => format!("exact scan broke down at block row {}", e.row),
    };

    // 2. Windowed, verified against the materialized matrix.
    let win_cfg = DriverConfig::new(p)
        .with_model(model)
        .with_boundary(BoundaryMode::Windowed(WINDOW));
    let win_reject = match ard_solve_cfg(&win_cfg, src, batches) {
        Ok(outcome) => {
            let t = BlockTridiag::from_source(src);
            let residual = batches
                .iter()
                .zip(&outcome.x)
                .map(|(y, x)| t.rel_residual(x, y))
                .fold(0.0f64, f64::max);
            if residual < RESIDUAL_ACCEPT {
                return Ok(AutoOutcome {
                    chosen: Chosen::Windowed {
                        reason: exact_reject,
                        residual,
                    },
                    outcome,
                });
            }
            format!("windowed residual {residual:.1e} exceeds {RESIDUAL_ACCEPT:.0e}")
        }
        Err(e) => format!("windowed mode broke down at block row {}", e.row),
    };

    // 3. Parallel cyclic reduction.
    let pcr_cfg = DriverConfig::new(p).with_model(model);
    let outcome = pcr_solve_cfg(&pcr_cfg, src, batches)?;
    Ok(AutoOutcome {
        chosen: Chosen::Pcr {
            reason: format!("{exact_reject}; {win_reject}"),
        },
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};
    use bt_blocktri::BlockRow;
    use bt_dense::Mat;

    const ZERO: CostModel = CostModel {
        latency_s: 0.0,
        per_byte_s: 0.0,
        flop_rate: f64::INFINITY,
        threads_per_rank: 1,
    };

    #[test]
    fn clustered_uses_exact_scan() {
        let src = ClusteredToeplitz::standard(256, 4, 1);
        let batches = vec![random_rhs(256, 4, 2, 2)];
        let auto = auto_solve(4, ZERO, &src, &batches).unwrap();
        match &auto.chosen {
            Chosen::ExactScan {
                boundary_condition,
                precision,
            } => {
                assert!(*boundary_condition < 1e6, "cond {boundary_condition}");
                assert_eq!(
                    *precision,
                    Precision::F32,
                    "well-conditioned: mixed path applies"
                );
            }
            other => panic!("expected exact scan, got {other:?}"),
        }
        let t = materialize(&src);
        assert!(t.rel_residual(&auto.outcome.x[0], &batches[0]) < 1e-11);
    }

    #[test]
    fn wide_spectrum_escalates_to_windowed() {
        // Poisson at N=200 is far beyond the exact-scan envelope but
        // diagonally-dominant-contracting, so windowed wins.
        let src = Poisson2D::new(200, 6);
        let batches = vec![random_rhs(200, 6, 2, 3)];
        let auto = auto_solve(8, ZERO, &src, &batches).unwrap();
        match &auto.chosen {
            Chosen::Windowed { residual, reason } => {
                assert!(*residual < 1e-12, "residual {residual}");
                assert!(
                    reason.contains("condition") || reason.contains("broke down"),
                    "{reason}"
                );
            }
            other => panic!("expected windowed, got {other:?}"),
        }
    }

    #[test]
    fn gray_zone_poisson_rejected_by_diagnostic() {
        // N=32 Poisson does NOT break down — it silently degrades
        // (Table III: residual ~1e-3). The conditioning diagnostic must
        // catch it and escalate, protecting the caller from a bad answer.
        let src = Poisson2D::new(32, 6);
        let batches = vec![random_rhs(32, 6, 2, 5)];
        let auto = auto_solve(8, ZERO, &src, &batches).unwrap();
        assert!(
            !matches!(auto.chosen, Chosen::ExactScan { .. }),
            "diagnostic must reject the degraded exact scan: {:?}",
            auto.chosen
        );
        let t = materialize(&src);
        assert!(t.rel_residual(&auto.outcome.x[0], &batches[0]) < 1e-11);
    }

    #[test]
    fn singular_superdiagonal_falls_through_to_pcr() {
        // A zero C_i makes the companion form impossible (exact scan
        // fails). The windowed mode doesn't need C^{-1} and usually
        // succeeds — so force it to fail too by making the system
        // non-contracting? Simpler: check the ladder reaches a correct
        // answer regardless of which rung wins, and that the exact scan
        // was rejected.
        struct BadC;
        impl BlockRowSource for BadC {
            fn n(&self) -> usize {
                12
            }
            fn m(&self) -> usize {
                2
            }
            fn row(&self, i: usize) -> BlockRow {
                let z = Mat::zeros(2, 2);
                let b = Mat::from_diag(&[8.0, 8.0]);
                let a = if i == 0 {
                    z.clone()
                } else {
                    Mat::identity(2).scaled(-1.0)
                };
                let c = if i + 1 == 12 || i == 3 {
                    Mat::zeros(2, 2) // singular superdiagonal at row 3
                } else {
                    Mat::identity(2).scaled(-1.0)
                };
                BlockRow::new(a, b, c)
            }
        }
        let batches = vec![random_rhs(12, 2, 1, 0)];
        let auto = auto_solve(4, ZERO, &BadC, &batches).unwrap();
        assert!(
            !matches!(auto.chosen, Chosen::ExactScan { .. }),
            "exact scan cannot work with singular C: {:?}",
            auto.chosen
        );
        let t = BlockTridiag::from_source(&BadC);
        assert!(t.rel_residual(&auto.outcome.x[0], &batches[0]) < 1e-11);
    }
}
