//! End-to-end tests of the distributed RD and ARD solvers: correctness
//! against the sequential baselines, equivalence of RD and ARD, counters,
//! timings, and the numerical envelope documented in DESIGN.md §7.

use bt_ard::driver::{
    ard_solve_cfg, ard_solve_cfg_on, ard_solve_dist, rd_solve_cfg, rd_solve_dist, DriverConfig,
};
use bt_ard::state::BoundaryMode;
use bt_blocktri::gen::{
    materialize, random_rhs, ClusteredToeplitz, ConvectionDiffusion, Poisson2D, RandomDominant,
};
use bt_blocktri::thomas::thomas_solve;
use bt_blocktri::BlockRowSource;
use bt_mpsim::{CostModel, SimBackend};

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Solve with both RD and ARD on `p` ranks and check residuals and
/// cross-solver agreement against Thomas.
fn check_solvers<S: BlockRowSource + Sync>(src: &S, p: usize, r: usize, tol: f64) {
    let n = src.n();
    let m = src.m();
    let t = materialize(src);
    let batches: Vec<_> = (0..2).map(|s| random_rhs(n, m, r, 100 + s)).collect();

    let rd = rd_solve_dist(p, ZERO, src, &batches).unwrap();
    let ard = ard_solve_dist(p, ZERO, src, &batches).unwrap();

    for (bi, y) in batches.iter().enumerate() {
        let x_th = thomas_solve(&t, y).unwrap();
        let rd_res = t.rel_residual(&rd.x[bi], y);
        let ard_res = t.rel_residual(&ard.x[bi], y);
        assert!(
            rd_res < tol,
            "RD residual {rd_res} (n={n} m={m} p={p} batch={bi})"
        );
        assert!(
            ard_res < tol,
            "ARD residual {ard_res} (n={n} m={m} p={p} batch={bi})"
        );
        assert!(
            rd.x[bi].rel_diff(&x_th) < tol * 10.0,
            "RD vs Thomas diff {} (n={n} m={m} p={p})",
            rd.x[bi].rel_diff(&x_th)
        );
        assert!(
            ard.x[bi].rel_diff(&rd.x[bi]) < tol,
            "ARD vs RD diff {}",
            ard.x[bi].rel_diff(&rd.x[bi])
        );
    }
    assert!(rd.stats.is_balanced());
    assert!(ard.stats.is_balanced());
}

#[test]
fn clustered_toeplitz_all_world_sizes() {
    let src = ClusteredToeplitz::standard(96, 4, 5);
    for p in [1, 2, 3, 4, 7, 8] {
        check_solvers(&src, p, 3, 1e-9);
    }
}

#[test]
fn clustered_toeplitz_large_n() {
    // The paper's regime: long chains, clustered spectra. The prefix
    // products' conditioning grows only slowly (spread ~ 1 + eps/d per
    // row), so residuals stay small even for N in the thousands.
    let src = ClusteredToeplitz::standard(2048, 4, 11);
    check_solvers(&src, 8, 2, 1e-6);
}

#[test]
fn poisson_within_exact_scan_envelope() {
    // Poisson's transfer products have per-row spectral spread up to
    // ~3.5 (for M = 6), so exact-scan boundary extraction degrades
    // geometrically with N; N = 16 stays accurate (DESIGN.md §7,
    // Table III quantifies the envelope).
    let src = Poisson2D::new(16, 6);
    for p in [1, 3, 4] {
        check_solvers(&src, p, 2, 1e-8);
    }
}

#[test]
fn poisson_large_n_with_windowed_boundary() {
    // The windowed extension recovers boundary diagonals locally; the
    // warm-start error contracts like ~0.39^w per mode for Poisson, so a
    // 64-row window is exact to machine precision at any N.
    let src = Poisson2D::new(512, 6);
    let t = materialize(&src);
    let batches = vec![random_rhs(512, 6, 3, 1)];
    let cfg = DriverConfig::new(8)
        .with_model(ZERO)
        .with_boundary(BoundaryMode::Windowed(64));
    let rd = rd_solve_cfg(&cfg, &src, &batches).unwrap();
    let ard = ard_solve_cfg(&cfg, &src, &batches).unwrap();
    assert!(t.rel_residual(&rd.x[0], &batches[0]) < 1e-10);
    assert!(t.rel_residual(&ard.x[0], &batches[0]) < 1e-10);
    let x_th = thomas_solve(&t, &batches[0]).unwrap();
    assert!(ard.x[0].rel_diff(&x_th) < 1e-10);
}

#[test]
fn windowed_matches_exact_scan_on_clustered() {
    let src = ClusteredToeplitz::standard(128, 4, 3);
    let batches = vec![random_rhs(128, 4, 2, 5)];
    let exact = ard_solve_dist(4, ZERO, &src, &batches).unwrap();
    let cfg = DriverConfig::new(4)
        .with_model(ZERO)
        .with_boundary(BoundaryMode::Windowed(48));
    let windowed = ard_solve_cfg(&cfg, &src, &batches).unwrap();
    assert!(windowed.x[0].rel_diff(&exact.x[0]) < 1e-11);
    // Windowed Phase 1 sends nothing; only the affine scans communicate,
    // so total setup traffic is strictly smaller.
    assert!(windowed.stats.total().bytes_sent < exact.stats.total().bytes_sent);
}

#[test]
fn random_dominant_large_n_with_windowed_boundary() {
    // Outside the exact-scan envelope (N = 256 random dominant), the
    // windowed mode still solves to near machine precision.
    let src = RandomDominant::new(256, 4, 1.5, 13);
    let t = materialize(&src);
    let batches = vec![random_rhs(256, 4, 2, 9)];
    let cfg = DriverConfig::new(8)
        .with_model(ZERO)
        .with_boundary(BoundaryMode::Windowed(64));
    let ard = ard_solve_cfg(&cfg, &src, &batches).unwrap();
    assert!(t.rel_residual(&ard.x[0], &batches[0]) < 1e-10);
}

#[test]
fn random_dominant_within_envelope() {
    let src = RandomDominant::new(16, 4, 1.5, 3);
    for p in [1, 2, 4] {
        check_solvers(&src, p, 2, 1e-6);
    }
}

#[test]
fn convection_diffusion_nonsymmetric() {
    let src = ConvectionDiffusion::new(40, 4, 0.5);
    check_solvers(&src, 4, 2, 1e-6);
}

#[test]
fn single_rhs_and_wide_panels() {
    let src = ClusteredToeplitz::standard(64, 3, 2);
    check_solvers(&src, 4, 1, 1e-10);
    check_solvers(&src, 4, 16, 1e-10);
}

#[test]
fn uneven_partitions() {
    // N not divisible by P: partitions differ by one row.
    let src = ClusteredToeplitz::standard(67, 3, 8);
    for p in [3, 5, 8, 13] {
        check_solvers(&src, p, 2, 1e-9);
    }
}

#[test]
fn minimal_rows_per_rank() {
    // Exactly one row per rank: every local scan is a single pair.
    let src = ClusteredToeplitz::standard(8, 3, 4);
    check_solvers(&src, 8, 2, 1e-10);
}

#[test]
fn ard_matches_rd_bit_for_bit_costs_less() {
    let src = ClusteredToeplitz::standard(128, 6, 6);
    let batches: Vec<_> = (0..4).map(|s| random_rhs(128, 6, 4, s)).collect();
    let rd = rd_solve_dist(8, ZERO, &src, &batches).unwrap();
    let ard = ard_solve_dist(8, ZERO, &src, &batches).unwrap();

    // Identical math => tiny divergence.
    for bi in 0..4 {
        assert!(ard.x[bi].rel_diff(&rd.x[bi]) < 1e-12);
    }
    // Flop counters: RD redoes matrix work per batch; ARD amortizes.
    let rd_flops = rd.stats.total().flops;
    let ard_flops = ard.stats.total().flops;
    assert!(
        (ard_flops as f64) < 0.5 * rd_flops as f64,
        "ARD flops {ard_flops} vs RD {rd_flops}"
    );
    // Byte traffic: same direction.
    let rd_bytes = rd.stats.total().bytes_sent;
    let ard_bytes = ard.stats.total().bytes_sent;
    assert!(
        (ard_bytes as f64) < 0.75 * rd_bytes as f64,
        "ARD bytes {ard_bytes} vs RD {rd_bytes}"
    );
    // ARD pays memory for the stored factors.
    assert!(ard.factor_bytes > 0);
    assert_eq!(rd.factor_bytes, 0);
}

#[test]
fn modeled_time_favors_ard_across_batches() {
    let src = ClusteredToeplitz::standard(256, 8, 1);
    let batches: Vec<_> = (0..8).map(|s| random_rhs(256, 8, 8, s)).collect();
    let model = CostModel::cluster();
    let rd = rd_solve_dist(4, model, &src, &batches).unwrap();
    let ard = ard_solve_dist(4, model, &src, &batches).unwrap();
    let rd_total = rd.timings.total_modeled();
    let ard_total = ard.timings.total_modeled();
    assert!(
        ard_total < rd_total,
        "ARD modeled {ard_total} should beat RD {rd_total} over 8 batches"
    );
    // Per-solve modeled time: ARD solves are much cheaper than RD solves.
    let rd_solve_avg: f64 = rd.timings.solve_modeled.iter().sum::<f64>() / 8.0;
    let ard_solve_avg: f64 = ard.timings.solve_modeled.iter().sum::<f64>() / 8.0;
    assert!(ard_solve_avg * 2.0 < rd_solve_avg);
}

#[test]
fn singular_superdiagonal_surfaces_as_error() {
    use bt_blocktri::{BlockRow, BlockTridiag, BlockVec};
    use bt_dense::Mat;

    // A system whose C_1 is singular: RD cannot form W_1 on ranks > 1.
    struct BadC;
    impl BlockRowSource for BadC {
        fn n(&self) -> usize {
            6
        }
        fn m(&self) -> usize {
            2
        }
        fn row(&self, i: usize) -> BlockRow {
            let z = Mat::zeros(2, 2);
            let b = Mat::from_diag(&[8.0, 8.0]);
            let a = if i == 0 {
                z.clone()
            } else {
                Mat::identity(2).scaled(-1.0)
            };
            let c = if i + 1 == 6 {
                z.clone()
            } else if i == 1 {
                Mat::zeros(2, 2) // singular superdiagonal
            } else {
                Mat::identity(2).scaled(-1.0)
            };
            BlockRow::new(a, b, c)
        }
    }
    // Sanity: the matrix itself is fine (Thomas solves it).
    let t = BlockTridiag::from_source(&BadC);
    let y = BlockVec::from_dense(&Mat::from_fn(12, 1, |i, _| i as f64), 2);
    assert!(thomas_solve(&t, &y).is_ok());

    // RD (which needs C_i^{-1}) reports the failing row instead of
    // deadlocking or panicking.
    let y2 = random_rhs(6, 2, 1, 0);
    let err = rd_solve_dist(3, ZERO, &BadC, &[y2]).unwrap_err();
    assert_eq!(err.row, 1);
}

#[test]
fn companion_exscan_minimal_shrink_case() {
    // Pinned from crates/core/tests/proptests.proptest-regressions: the
    // smallest shrink of `companion_exscan_matches_sequential_products`
    // (p = 2, rows_per_rank = 1, m = 1, seed = 0). The shrink exercises
    // the tightest boundary layout: one row per rank, scalar blocks, and
    // rank 1's exclusive product covering exactly one W application.
    use bt_ard::companion::{CompanionProduct, CompanionState, CompanionW};
    use bt_ard::scans::companion_exscan;
    use bt_dense::rel_diff;
    use bt_mpsim::run_spmd;

    let (p, rows_per_rank, m, seed) = (2usize, 1usize, 1usize, 0u64);
    let n = p * rows_per_rank + 1;
    let src = ClusteredToeplitz::standard(n, m, seed);
    let t = materialize(&src);

    // Sequential reference: the rank-1 boundary diagonal is row 0's,
    // extracted from the initial state before any advance.
    let mut state = CompanionState::initial(t.row(0)).unwrap();
    let mut expected = vec![None; p];
    for (q, slot) in expected.iter_mut().enumerate().skip(1) {
        if q * rows_per_rank == 1 {
            *slot = Some(state.extract_diag(&t.row(0).c).unwrap());
        }
    }
    for i in 1..n - 1 {
        let w = CompanionW::from_row(t.row(i)).unwrap();
        state.advance(&w);
        for (q, slot) in expected.iter_mut().enumerate().skip(1) {
            if q * rows_per_rank == i + 1 {
                *slot = Some(state.extract_diag(&t.row(i).c).unwrap());
            }
        }
    }

    let src2 = src.clone();
    let out = run_spmd(p, ZERO, move |comm| {
        let rank = comm.rank();
        let lo = rank * rows_per_rank;
        let hi = lo + rows_per_rank;
        let mut total = CompanionProduct::identity(m);
        for i in lo.max(1)..hi {
            let w = CompanionW::from_row(&src2.row(i)).unwrap();
            total.apply_left(&w);
        }
        let excl = companion_exscan(comm, 0, total);
        excl.map(|g| {
            let mut s = CompanionState::initial(&src2.row(0)).unwrap();
            s.apply_product(&g);
            s.extract_diag(&src2.row(lo - 1).c).unwrap()
        })
    });
    assert!(out.results[0].is_none(), "rank 0 has no exclusive product");
    for (q, (got, want)) in out.results.iter().zip(&expected).enumerate().skip(1) {
        let got = got.as_ref().expect("non-first rank has exclusive");
        let want = want.as_ref().expect("recorded");
        let d = rel_diff(got, want);
        assert!(d < 1e-9, "rank {q}: rel_diff {d}");
    }
}

#[test]
fn deterministic_across_runs() {
    let src = ClusteredToeplitz::standard(64, 4, 9);
    let batches = vec![random_rhs(64, 4, 2, 7)];
    // The solution must be deterministic on any backend; the full
    // counter set (overlap_ns is measured wall time on shm) only on the
    // simulator, so that half is pinned to SimBackend explicitly.
    let a = ard_solve_dist(4, ZERO, &src, &batches).unwrap();
    let b = ard_solve_dist(4, ZERO, &src, &batches).unwrap();
    assert_eq!(a.x[0], b.x[0], "solver must be run-to-run deterministic");
    let cfg = DriverConfig::new(4)
        .with_model(ZERO)
        .with_threads_per_rank(1);
    let a = ard_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();
    let b = ard_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();
    assert_eq!(a.x[0], b.x[0], "solver must be run-to-run deterministic");
    assert_eq!(a.stats, b.stats, "counters must be deterministic");
}

#[test]
fn lean_replay_matches_standard_replay() {
    let src = ClusteredToeplitz::standard(96, 5, 12);
    let batches: Vec<_> = (0..3).map(|s| random_rhs(96, 5, 3, s)).collect();
    for p in [1, 2, 4, 7] {
        let full = ard_solve_dist(p, ZERO, &src, &batches).unwrap();
        let cfg = DriverConfig::new(p).with_model(ZERO).with_lean();
        let lean = ard_solve_cfg(&cfg, &src, &batches).unwrap();
        for b in 0..batches.len() {
            let d = lean.x[b].rel_diff(&full.x[b]);
            assert!(d < 1e-12, "p={p} batch={b}: {d}");
        }
        // Identical message pattern and flop count...
        assert_eq!(
            lean.stats.total().msgs_sent,
            full.stats.total().msgs_sent,
            "p={p}"
        );
        assert_eq!(
            lean.stats.total().bytes_sent,
            full.stats.total().bytes_sent,
            "p={p}"
        );
        assert_eq!(lean.stats.total().flops, full.stats.total().flops, "p={p}");
        // ...but strictly less stored factor memory (for multi-row ranks).
        assert!(lean.factor_bytes < full.factor_bytes, "p={p}");
    }
}

#[test]
fn lean_replay_single_row_per_rank() {
    let src = ClusteredToeplitz::standard(6, 4, 2);
    let batches = vec![random_rhs(6, 4, 2, 1)];
    let cfg = DriverConfig::new(6).with_model(ZERO).with_lean();
    let lean = ard_solve_cfg(&cfg, &src, &batches).unwrap();
    let t = materialize(&src);
    assert!(t.rel_residual(&lean.x[0], &batches[0]) < 1e-12);
}

#[test]
fn threads_per_rank_speeds_model_without_changing_answer_or_counters() {
    let (n, m, p, r) = (256, 8, 8, 4);
    let src = ClusteredToeplitz::standard(n, m, 3);
    let batches = vec![random_rhs(n, m, r, 7)];
    let model = CostModel::cluster();
    let cfg1 = DriverConfig::new(p)
        .with_model(model)
        .with_threads_per_rank(1);
    let cfg4 = DriverConfig::new(p)
        .with_model(model)
        .with_threads_per_rank(4);
    // Modeled-time claims are simulator semantics: pin the backend.
    let out1 = ard_solve_cfg_on::<SimBackend, _>(&cfg1, &src, &batches).unwrap();
    let out4 = ard_solve_cfg_on::<SimBackend, _>(&cfg4, &src, &batches).unwrap();
    // Same solution bits and identical exact counters (Table I is
    // thread-count independent)...
    assert_eq!(out1.x[0].to_dense(), out4.x[0].to_dense());
    assert_eq!(out1.stats.total().flops, out4.stats.total().flops);
    assert_eq!(out1.stats.total().bytes_sent, out4.stats.total().bytes_sent);
    // ...but a faster modeled runtime: compute divides by the budget.
    assert!(
        out4.timings.setup_modeled < out1.timings.setup_modeled,
        "4-thread setup {} !< 1-thread {}",
        out4.timings.setup_modeled,
        out1.timings.setup_modeled
    );
    assert!(out4.timings.solve_modeled[0] < out1.timings.solve_modeled[0]);
}

#[test]
fn modeled_times_match_analytic_prediction() {
    // The driver's measured virtual times must track the analytic
    // critical-path model (complexity.rs) within a modest factor: the
    // model ignores barrier rounds, the error-check allreduce and rank
    // imbalance, so allow 40% slack.
    use bt_ard::complexity::{predicted_ard_solve_seconds, predicted_setup_seconds, Config};
    let model = CostModel::cluster();
    for (n, m, p, r) in [(512, 16, 8, 8), (1024, 8, 16, 4), (256, 32, 4, 16)] {
        let src = ClusteredToeplitz::standard(n, m, 5);
        let batches = vec![random_rhs(n, m, r, 1); 2];
        let cfg = DriverConfig::new(p).with_model(model);
        // Virtual clocks vs the analytic model: simulator-only semantics.
        let out = ard_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();
        let c = Config { n, m, p, r };

        let setup_pred = predicted_setup_seconds(&c, &model);
        let setup_meas = out.timings.setup_modeled;
        let ratio = setup_meas / setup_pred;
        assert!(
            (0.6..1.4).contains(&ratio),
            "setup n={n} m={m} p={p}: measured {setup_meas:.2e} vs predicted {setup_pred:.2e}"
        );

        let solve_pred = predicted_ard_solve_seconds(&c, &model);
        let solve_meas = out.timings.solve_modeled[1];
        let ratio = solve_meas / solve_pred;
        assert!(
            (0.6..1.6).contains(&ratio),
            "solve n={n} m={m} p={p}: measured {solve_meas:.2e} vs predicted {solve_pred:.2e}"
        );
    }
}
