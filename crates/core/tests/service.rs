//! Integration tests for the [`bt_ard::SolverService`] layer: cache
//! hit/miss/eviction semantics, batching triggers (width and deadline),
//! shape rejection, eviction racing in-flight solves, and panic
//! containment in the dispatcher.

use std::time::{Duration, Instant};

use bt_ard::{MatrixKey, ServiceConfig, ServiceError, SolverService};
use bt_blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use bt_blocktri::BlockVec;
use bt_mpsim::CostModel;

const N: usize = 24;
const M: usize = 3;
const P: usize = 4;

fn src(seed: u64) -> ClusteredToeplitz {
    ClusteredToeplitz::standard(N, M, seed)
}

fn cfg() -> ServiceConfig {
    ServiceConfig::new(P, CostModel::default())
}

#[test]
fn register_is_idempotent_and_solve_round_trips() {
    let svc = SolverService::start(ServiceConfig {
        max_delay: Duration::from_millis(5),
        ..cfg()
    });
    let a = src(7);
    let key = svc.register(&a).unwrap();
    let key2 = svc.register(&a).unwrap();
    assert_eq!(key, key2, "same contents must fingerprint identically");

    let y = random_rhs(N, M, 2, 11);
    let resp = svc.solve(key, &y).unwrap();
    let t = materialize(&a);
    assert!(t.rel_residual(&resp.x, &y) < 1e-10);

    let stats = svc.stats();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.dispatches, 1);
    assert_eq!(stats.cached_entries, 1);
    assert!(stats.cache_bytes > 0);
}

#[test]
fn distinct_matrices_get_distinct_keys() {
    let ka = MatrixKey::fingerprint(&src(1));
    let kb = MatrixKey::fingerprint(&src(2));
    assert_ne!(ka, kb);
}

#[test]
fn deadline_flush_dispatches_a_single_queued_request() {
    // Width trigger unreachable (max_batch huge): only the deadline can
    // flush, and it must fire even with a single queued request.
    let svc = SolverService::start(ServiceConfig {
        max_batch: 1_000,
        max_delay: Duration::from_millis(25),
        ..cfg()
    });
    let a = src(3);
    let key = svc.register(&a).unwrap();
    let y = random_rhs(N, M, 1, 5);

    let t0 = Instant::now();
    let resp = svc.solve(key, &y).unwrap();
    let elapsed = t0.elapsed();

    assert_eq!(resp.batch_width, 1);
    assert!(
        resp.queue_wait >= Duration::from_millis(20),
        "single request should wait out the deadline, waited {:?}",
        resp.queue_wait
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline flush too slow: {elapsed:?}"
    );
    assert!(materialize(&a).rel_residual(&resp.x, &y) < 1e-10);
}

#[test]
fn width_flush_coalesces_concurrent_single_rhs_requests() {
    const K: usize = 8;
    // Deadline far away: only the width trigger can flush this fast.
    let svc = SolverService::start(ServiceConfig {
        max_batch: K,
        max_delay: Duration::from_secs(10),
        ..cfg()
    });
    let a = src(9);
    let key = svc.register(&a).unwrap();
    let t = materialize(&a);

    let rhss: Vec<BlockVec> = (0..K as u64)
        .map(|s| random_rhs(N, M, 1, 100 + s))
        .collect();
    let t0 = Instant::now();
    let tickets: Vec<_> = rhss.iter().map(|y| svc.submit(key, y).unwrap()).collect();
    for (ticket, y) in tickets.into_iter().zip(&rhss) {
        let resp = ticket.wait().unwrap();
        assert_eq!(
            resp.batch_width, K,
            "all {K} single-RHS requests should ride one coalesced dispatch"
        );
        assert!(t.rel_residual(&resp.x, y) < 1e-10);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "width flush should beat the 10 s deadline, took {elapsed:?}"
    );
    let stats = svc.stats();
    assert_eq!(stats.dispatches, 1);
    assert_eq!(stats.dispatched_columns, K as u64);
    assert_eq!(stats.max_batch_width, K as u64);
}

#[test]
fn mismatched_shapes_are_rejected_not_silently_batched() {
    let svc = SolverService::start(ServiceConfig {
        max_delay: Duration::from_millis(5),
        ..cfg()
    });
    let a = src(13);
    let key = svc.register(&a).unwrap();

    // Wrong block count N.
    let bad_n = random_rhs(N - 1, M, 1, 1);
    match svc.submit(key, &bad_n) {
        Err(ServiceError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, (N, M));
            assert_eq!(got, (N - 1, M));
        }
        other => panic!(
            "expected ShapeMismatch, got {other:?}",
            other = other.map(|_| ())
        ),
    }

    // Wrong block order M.
    let bad_m = random_rhs(N, M + 1, 1, 1);
    assert!(matches!(
        svc.submit(key, &bad_m),
        Err(ServiceError::ShapeMismatch { .. })
    ));

    // Unknown key.
    let never = MatrixKey::fingerprint(&src(999));
    assert!(matches!(
        svc.submit(never, &random_rhs(N, M, 1, 1)),
        Err(ServiceError::UnknownKey(_))
    ));

    // A well-shaped request still works after the rejections.
    let y = random_rhs(N, M, 1, 2);
    let resp = svc.solve(key, &y).unwrap();
    assert!(materialize(&a).rel_residual(&resp.x, &y) < 1e-10);
}

#[test]
fn requests_against_different_matrices_never_share_a_batch() {
    // Two matrices with the same shape queued together: the coalescer
    // groups by key, so each dispatch must carry exactly one matrix.
    let svc = SolverService::start(ServiceConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(50),
        ..cfg()
    });
    let a = src(21);
    let b = src(22);
    let ka = svc.register(&a).unwrap();
    let kb = svc.register(&b).unwrap();
    let ta = materialize(&a);
    let tb = materialize(&b);

    let ys: Vec<BlockVec> = (0..4u64).map(|s| random_rhs(N, M, 1, 200 + s)).collect();
    let tickets: Vec<_> = ys
        .iter()
        .enumerate()
        .map(|(i, y)| {
            let key = if i % 2 == 0 { ka } else { kb };
            (i, svc.submit(key, y).unwrap())
        })
        .collect();
    for (i, ticket) in tickets {
        let resp = ticket.wait().unwrap();
        let t = if i % 2 == 0 { &ta } else { &tb };
        assert!(
            t.rel_residual(&resp.x, &ys[i]) < 1e-10,
            "request {i} solved against the wrong matrix"
        );
        assert!(
            resp.batch_width <= 2,
            "batch mixed matrices: width {}",
            resp.batch_width
        );
    }
}

#[test]
fn eviction_racing_an_inflight_solve_is_safe() {
    // Cache budget of one byte: any second registration evicts the
    // LRU entry. Queue a request against A (long deadline so it stays
    // queued), evict A by registering B, then check the queued request
    // still completes against A's factors (pinned by its Arc).
    let svc = SolverService::start(ServiceConfig {
        cache_bytes: 1,
        max_batch: 1_000,
        max_delay: Duration::from_millis(300),
        ..cfg()
    });
    let a = src(31);
    let b = src(32);
    let ka = svc.register(&a).unwrap();

    let y = random_rhs(N, M, 1, 3);
    let ticket = svc.submit(ka, &y).unwrap();

    let kb = svc.register(&b).unwrap();
    assert!(!svc.contains(ka), "A should have been evicted by B");
    assert!(svc.contains(kb));
    assert_eq!(svc.stats().evictions, 1);

    // The in-flight request still resolves correctly against A.
    let resp = ticket.wait().unwrap();
    assert!(materialize(&a).rel_residual(&resp.x, &y) < 1e-10);

    // New submissions against the evicted key are refused.
    assert!(matches!(
        svc.submit(ka, &y),
        Err(ServiceError::UnknownKey(_))
    ));
}

#[test]
fn solve_panic_is_contained_to_the_batch() {
    let svc = SolverService::start(ServiceConfig {
        max_delay: Duration::from_millis(5),
        ..cfg()
    });
    let a = src(41);
    let b = src(42);
    let ka = svc.register(&a).unwrap();
    let kb = svc.register(&b).unwrap();

    // Sabotage A's session the way a mid-solve panic would.
    assert!(svc.lose_factors_for_test(ka));

    let y = random_rhs(N, M, 1, 4);
    match svc.solve(ka, &y) {
        Err(ServiceError::SolveFailed(msg)) => {
            assert!(
                msg.contains("lost"),
                "panic payload should mention lost factors, got: {msg}"
            );
        }
        other => panic!(
            "expected SolveFailed, got {other:?}",
            other = other.map(|_| ())
        ),
    }

    // The dispatcher survived; other cached matrices are unaffected.
    let resp = svc.solve(kb, &y).unwrap();
    assert!(materialize(&b).rel_residual(&resp.x, &y) < 1e-10);
}

#[test]
fn drop_flushes_queued_requests_instead_of_abandoning_them() {
    let svc = SolverService::start(ServiceConfig {
        max_batch: 1_000,
        max_delay: Duration::from_secs(10),
        ..cfg()
    });
    let a = src(51);
    let key = svc.register(&a).unwrap();
    let y = random_rhs(N, M, 1, 6);
    let ticket = svc.submit(key, &y).unwrap();
    drop(svc); // shutdown flushes the queue before joining
    let resp = ticket.wait().unwrap();
    assert!(materialize(&a).rel_residual(&resp.x, &y) < 1e-10);
}

#[test]
fn ws_trim_budget_is_applied_after_dispatch() {
    let svc = SolverService::start(ServiceConfig {
        max_delay: Duration::from_millis(5),
        ws_trim_bytes: Some(0),
        ..cfg()
    });
    let a = src(61);
    let key = svc.register(&a).unwrap();
    let y = random_rhs(N, M, 4, 8);
    let resp = svc.solve(key, &y).unwrap();
    assert!(materialize(&a).rel_residual(&resp.x, &y) < 1e-10);
    assert!(
        svc.stats().ws_trimmed_bytes > 0,
        "a zero-byte budget must trim the workspace the solve just used"
    );
}
