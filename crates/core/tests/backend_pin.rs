//! Bitwise pin of the simulator backend across the `CommBackend`
//! refactor: exact modeled clocks (as `f64` bit patterns), FNV hashes of
//! the solution bytes, and the message/byte/flop counters of three
//! representative runs. Captured on the pre-refactor concrete `Comm`;
//! the refactored simulator must reproduce every value exactly — the
//! trait seam is a pure code motion for this backend. Uses the
//! explicit `SimBackend` entry points so the pin holds under any
//! `BT_BACKEND`.
//!
//! Modeled clocks and counters depend only on problem shape, so those
//! pins hold on every kernel path. The solution-byte hashes were
//! captured on the AVX2+FMA kernels — fused rounding differs from the
//! scalar/NEON paths — so they are asserted only when that ISA is the
//! active dispatch target.

use bt_ard::driver::{ard_solve_cfg_on, pcr_solve_cfg_on, DriverConfig};
use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_blocktri::gen::{random_rhs, rhs_panel, ClusteredToeplitz};
use bt_blocktri::BlockVec;
use bt_dense::simd::{active, Isa};
use bt_dense::Mat;
use bt_mpsim::{run_spmd, CommBackend, CostModel, SimBackend};

/// True when the kernel dispatch matches the path the solution-byte
/// pins were captured on.
fn pinned_isa() -> bool {
    active() == Isa::Avx2Fma
}

fn hash_mat(h: &mut u64, m: &Mat) {
    let mut acc = *h;
    for j in 0..m.cols() {
        for &v in m.col(j) {
            for b in v.to_bits().to_le_bytes() {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    *h = acc;
}

fn hash_blockvecs(xs: &[BlockVec]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for blk in &x.blocks {
            hash_mat(&mut h, blk);
        }
    }
    h
}

/// The full ARD driver path (setup + replay solves) under the cluster
/// model: modeled clocks, solution bytes, and world counters.
#[test]
fn ard_driver_is_bitwise_pinned() {
    let src = ClusteredToeplitz::standard(32, 3, 7);
    let batches: Vec<BlockVec> = (0..2).map(|s| random_rhs(32, 3, 5, 40 + s)).collect();
    let cfg = DriverConfig::new(4)
        .with_model(CostModel::cluster())
        .with_threads_per_rank(1);
    let out = ard_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();

    let x_hash = hash_blockvecs(&out.x);
    let setup_bits = out.timings.setup_modeled.to_bits();
    let solve_bits: Vec<u64> = out
        .timings
        .solve_modeled
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let total = out.stats.total();

    if pinned_isa() {
        assert_eq!(x_hash, 0x835a_b4ea_25bb_5037, "ARD solution bytes drifted");
    }
    assert_eq!(
        setup_bits, 0x3f00_7e46_64ba_d604,
        "modeled setup clock drifted"
    );
    assert_eq!(
        solve_bits,
        vec![0x3eea_ea33_8763_5870, 0x3eea_ea33_8763_5870],
        "modeled solve clocks drifted"
    );
    assert_eq!(
        (total.msgs_sent, total.bytes_sent),
        (100, 6960),
        "message/byte counters drifted"
    );
    assert_eq!(total.flops, 46818, "flop counter drifted");
}

/// The PR 5 pipelined path: tiled replay with nonblocking receives,
/// including the overlap accounting, on a raw `run_spmd` world.
#[test]
fn tiled_replay_is_bitwise_pinned() {
    let (n, m, p, r, tile) = (16, 3, 4, 12, 4);
    let src = ClusteredToeplitz::standard(n, m, 1);
    let out = run_spmd(p, CostModel::cluster(), |comm| {
        let sys = RankSystem::from_source(&src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
        let y_local: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 3, i)).collect();
        let mut x: Vec<Mat> = y_local
            .iter()
            .map(|p| Mat::zeros(p.rows(), p.cols()))
            .collect();
        factors.solve_replay_into_tiled(comm, &y_local, &mut x, tile);
        x
    });

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for panels in &out.results {
        for panel in panels {
            hash_mat(&mut h, panel);
        }
    }
    if pinned_isa() {
        assert_eq!(
            h, 0x5451_f938_24d8_169d,
            "tiled replay solution bytes drifted"
        );
    }
    assert_eq!(
        out.modeled_seconds.to_bits(),
        0x3f02_e474_8e66_427b,
        "modeled wall clock drifted"
    );
    assert_eq!(
        out.overlap_seconds().to_bits(),
        0x3efe_40a1_9f91_4425,
        "overlap accounting drifted"
    );
    let total = out.stats.total();
    assert_eq!(
        (total.msgs_sent, total.bytes_sent, total.nb_recvs),
        (72, 7728, 30),
        "pipelined counters drifted"
    );
}

/// The PCR comparator (halo exchanges + allreduce coordination).
#[test]
fn pcr_driver_is_bitwise_pinned() {
    let src = ClusteredToeplitz::standard(24, 2, 3);
    let batches = vec![random_rhs(24, 2, 4, 77)];
    let cfg = DriverConfig::new(4)
        .with_model(CostModel::hpc())
        .with_threads_per_rank(1);
    let out = pcr_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();

    if pinned_isa() {
        assert_eq!(
            hash_blockvecs(&out.x),
            0x72eb_1958_84f9_82b6,
            "PCR solution bytes drifted"
        );
    }
    assert_eq!(
        out.timings.solve_modeled[0].to_bits(),
        0x3ef0_20c0_871c_a8ff,
        "PCR modeled solve clock drifted"
    );
    let total = out.stats.total();
    assert_eq!(
        (total.msgs_sent, total.bytes_sent),
        (98, 14448),
        "PCR counters drifted"
    );
}

/// Collective tag/clock sequences: a mixed collective workload on the
/// hpc model must reproduce the exact virtual clock it had before the
/// collectives moved into trait default methods.
#[test]
fn collective_clock_is_bitwise_pinned() {
    let out = run_spmd(8, CostModel::hpc(), |comm| {
        comm.barrier();
        let s = comm.scan_inclusive(comm.rank() as u64 + 1, |a, b| a + b);
        let e = comm.scan_exclusive(s, |a, b| a + b).unwrap_or(0);
        let m = comm.allreduce(e, |a, b| (*a).max(*b));
        let g = comm.allgather(m + comm.rank() as u64);
        let sum: u64 = g.iter().sum();
        let all: Vec<u64> = comm.alltoall((0..8).map(|i| sum + i).collect());
        comm.reduce(3, all.iter().sum::<u64>(), |a, b| a + b)
            .unwrap_or(0)
    });
    assert_eq!(out.results[7], 0, "non-root reduce result drifted");
    assert_eq!(out.results[3], 45024, "collective data path drifted");
    assert_eq!(
        out.modeled_seconds.to_bits(),
        0x3ef7_1a2b_82ee_3a0e,
        "collective virtual clock drifted"
    );
}
