//! Property-based tests for the scan machinery: for random pair values,
//! world sizes and panel widths, the distributed scans must agree with
//! the sequential reference composition, and replay must agree with
//! fresh.

use bt_ard::companion::{CompanionProduct, CompanionState, CompanionW};
use bt_ard::pairs::AffinePair;
use bt_ard::scans::{
    affine_exscan_fresh, affine_exscan_replay, companion_exscan, Direction, ScanTrace,
};
use bt_blocktri::gen::{materialize, ClusteredToeplitz};
use bt_blocktri::BlockRowSource;
use bt_dense::{rel_diff, Mat, Workspace};
use bt_mpsim::{run_spmd, CostModel};
use proptest::prelude::*;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Deterministic pseudo-random pair per (rank, dims, salt).
fn rank_pair(rank: usize, m: usize, r: usize, salt: u64) -> AffinePair {
    let base = (rank as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt);
    AffinePair {
        mat: Mat::from_fn(m, m, |i, j| {
            (((base.wrapping_add((i * m + j) as u64)) % 1000) as f64 / 1000.0 - 0.5) * 1.6
        }),
        vec: Mat::from_fn(m, r, |i, j| {
            ((base.wrapping_add((i * r + j + 7) as u64) % 1000) as f64) / 500.0 - 1.0
        }),
    }
}

/// Sequential exclusive composition (later-rank-outer), per logical rank.
fn reference_exscan(pairs: &[AffinePair]) -> Vec<Option<AffinePair>> {
    let mut out = vec![None];
    let mut acc: Option<AffinePair> = None;
    for pair in &pairs[..pairs.len() - 1] {
        acc = Some(match &acc {
            None => pair.clone(),
            Some(a) => AffinePair::compose(pair, a),
        });
        out.push(acc.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fresh_scan_matches_reference(
        p in 1usize..10,
        m in 1usize..5,
        r in 1usize..4,
        salt in 0u64..1000,
        backward in proptest::bool::ANY,
    ) {
        let dir = if backward { Direction::Backward } else { Direction::Forward };
        // Logical ordering: pair for logical index l sits on physical rank
        // dir.physical(l, p).
        let logical_pairs: Vec<AffinePair> = (0..p).map(|l| rank_pair(l, m, r, salt)).collect();
        let expect = reference_exscan(&logical_pairs);
        let lp = logical_pairs.clone();
        let out = run_spmd(p, ZERO, move |comm| {
            let l = dir.logical(comm.rank(), p);
            affine_exscan_fresh(comm, dir, 0, lp[l].clone(), None)
        });
        for rank in 0..p {
            let l = dir.logical(rank, p);
            match (&out.results[rank], &expect[l]) {
                (None, None) => {}
                (Some(v), Some(e)) => {
                    prop_assert!(rel_diff(v, &e.vec) < 1e-10, "p={p} rank={rank}");
                }
                other => prop_assert!(false, "p={p} rank={rank}: {other:?}"),
            }
        }
    }

    #[test]
    fn replay_always_matches_fresh(
        p in 1usize..10,
        m in 1usize..5,
        r in 1usize..4,
        salt in 0u64..1000,
    ) {
        let pairs: Vec<AffinePair> = (0..p).map(|l| rank_pair(l, m, r, salt)).collect();
        let lp = pairs.clone();
        let out = run_spmd(p, ZERO, move |comm| {
            let rk = comm.rank();
            let mut trace = ScanTrace::default();
            let setup = AffinePair { mat: lp[rk].mat.clone(), vec: Mat::zero_width(m) };
            let _ = affine_exscan_fresh(comm, Direction::Forward, 0, setup, Some(&mut trace));
            let replayed = affine_exscan_replay(
                comm, Direction::Forward, 100, lp[rk].vec.clone(), &trace, &mut Workspace::new(),
            );
            let fresh = affine_exscan_fresh(comm, Direction::Forward, 200, lp[rk].clone(), None);
            (replayed, fresh)
        });
        for (rank, (replayed, fresh)) in out.results.iter().enumerate() {
            match (replayed, fresh) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert!(rel_diff(a, b) < 1e-11, "rank={rank}"),
                other => prop_assert!(false, "rank={rank}: {other:?}"),
            }
        }
    }

    #[test]
    fn companion_exscan_matches_sequential_products(
        p in 2usize..8,
        rows_per_rank in 1usize..4,
        m in 1usize..4,
        seed in 0u64..500,
    ) {
        // Build a clustered system with one W-range per rank and compare
        // the scanned exclusive products (applied to S_0 and extracted)
        // against the sequentially advanced state.
        let n = p * rows_per_rank + 1; // +1 so the last W index stays valid
        let src = ClusteredToeplitz::standard(n, m, seed);
        let t = materialize(&src);

        // Sequential reference: advance the state row by row; record the
        // diagonal at each rank boundary lo-1 (lo = rank * rows_per_rank).
        let mut state = CompanionState::initial(t.row(0)).unwrap();
        let mut expected = vec![None; p]; // boundary diag for rank q > 0
        // Rank q's boundary is row q*rows_per_rank - 1; row 0's diagonal
        // comes from the initial state before any advance.
        for (q, slot) in expected.iter_mut().enumerate().skip(1) {
            if q * rows_per_rank == 1 {
                *slot = Some(state.extract_diag(&t.row(0).c).unwrap());
            }
        }
        for i in 1..n - 1 {
            let w = CompanionW::from_row(t.row(i)).unwrap();
            state.advance(&w);
            for (q, slot) in expected.iter_mut().enumerate().skip(1) {
                if q * rows_per_rank == i + 1 {
                    *slot = Some(state.extract_diag(&t.row(i).c).unwrap());
                }
            }
        }

        let src2 = src.clone();
        let out = run_spmd(p, ZERO, move |comm| {
            let rank = comm.rank();
            let lo = rank * rows_per_rank;
            let hi = lo + rows_per_rank;
            let mut total = CompanionProduct::identity(m);
            for i in lo.max(1)..hi {
                let w = CompanionW::from_row(&src2.row(i)).unwrap();
                total.apply_left(&w);
            }
            let excl = companion_exscan(comm, 0, total);
            excl.map(|g| {
                let mut s = CompanionState::initial(&src2.row(0)).unwrap();
                s.apply_product(&g);
                s.extract_diag(&src2.row(lo - 1).c).unwrap()
            })
        });
        for (q, (got, want)) in out.results.iter().zip(&expected).enumerate().skip(1) {
            let got = got.as_ref().expect("non-first rank has exclusive");
            let want = want.as_ref().expect("recorded");
            prop_assert!(rel_diff(got, want) < 1e-9, "rank {q}: {}", rel_diff(got, want));
        }
        prop_assert!(out.results[0].is_none());
    }
}
