//! Cross-backend agreement: the same solve on the virtual-clock
//! simulator (`bt-mpsim`) and the real shared-memory runtime (`bt-shm`)
//! must produce bitwise-identical solutions. Both backends share the
//! trait-default collectives and the pooled panel wire format, and every
//! point-to-point pattern in the solvers is deterministic, so any
//! divergence — a reordered reduction, a truncated panel, a halo row off
//! by one — shows up as a differing bit pattern, not a tolerance miss.

use bt_ard::driver::{ard_solve_cfg_on, pcr_solve_cfg_on, DriverConfig};
use bt_ard::state::{ArdRankFactors, RankSystem};
use bt_blocktri::gen::{random_rhs, rhs_panel, ClusteredToeplitz};
use bt_blocktri::{BlockRowSource, BlockVec};
use bt_dense::Mat;
use bt_mpsim::{run_spmd, CommBackend, CostModel, SimBackend};
use bt_shm::{run_shm, ShmBackend};
use proptest::prelude::*;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

fn bits_of_mat(m: &Mat) -> Vec<u64> {
    let mut bits = Vec::with_capacity(m.rows() * m.cols());
    for j in 0..m.cols() {
        bits.extend(m.col(j).iter().map(|v| v.to_bits()));
    }
    bits
}

fn bits_of_blockvecs(xs: &[BlockVec]) -> Vec<u64> {
    xs.iter()
        .flat_map(|x| x.blocks.iter().flat_map(bits_of_mat))
        .collect()
}

/// Runs the full ARD driver on both backends and asserts bitwise-equal
/// solutions for every batch.
fn assert_ard_agreement<S: BlockRowSource + Sync>(
    cfg: &DriverConfig,
    src: &S,
    batches: &[BlockVec],
) {
    let sim = ard_solve_cfg_on::<SimBackend, _>(cfg, src, batches).unwrap();
    let shm = ard_solve_cfg_on::<ShmBackend, _>(cfg, src, batches).unwrap();
    assert_eq!(
        bits_of_blockvecs(&sim.x),
        bits_of_blockvecs(&shm.x),
        "sim and shm ARD solutions diverged (p={})",
        cfg.p
    );
    // Exact flop counts are clock-independent and must match too.
    assert_eq!(sim.stats.total().flops, shm.stats.total().flops);
}

#[test]
fn ard_driver_agrees_across_backends() {
    let src = ClusteredToeplitz::standard(64, 3, 7);
    let batches: Vec<BlockVec> = (0..2).map(|s| random_rhs(64, 3, 5, 40 + s)).collect();
    for p in [1, 2, 4, 8] {
        let cfg = DriverConfig::new(p)
            .with_model(ZERO)
            .with_threads_per_rank(1);
        assert_ard_agreement(&cfg, &src, &batches);
    }
}

#[test]
fn lean_replay_agrees_across_backends() {
    // The memory-lean boundary-recurrence replay exercises a different
    // message schedule (recomputed prefixes) than the stored-factor path.
    let src = ClusteredToeplitz::standard(48, 4, 11);
    let batches = vec![random_rhs(48, 4, 3, 5)];
    let cfg = DriverConfig::new(8)
        .with_model(ZERO)
        .with_lean()
        .with_threads_per_rank(1);
    assert_ard_agreement(&cfg, &src, &batches);
}

#[test]
fn tiled_replay_agrees_across_backends() {
    // The PR 5 pipelined path: RHS-tiled replay with nonblocking
    // receives posted a tile ahead. On shm the posts are genuinely
    // concurrent, so this doubles as an ordering test for the SPSC wire.
    let (n, m, p, r, tile) = (16, 3, 4, 12, 4);
    let src = ClusteredToeplitz::standard(n, m, 1);
    let sim = run_spmd(p, ZERO, |comm| {
        let sys = RankSystem::from_source(&src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
        let y: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 3, i)).collect();
        let mut x: Vec<Mat> = y.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();
        factors.solve_replay_into_tiled(comm, &y, &mut x, tile);
        x.iter().flat_map(bits_of_mat).collect::<Vec<u64>>()
    });
    let shm = run_shm(p, ZERO, |comm| {
        let sys = RankSystem::from_source(&src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
        let y: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 3, i)).collect();
        let mut x: Vec<Mat> = y.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();
        factors.solve_replay_into_tiled(comm, &y, &mut x, tile);
        x.iter().flat_map(bits_of_mat).collect::<Vec<u64>>()
    });
    assert_eq!(
        sim.results, shm.results,
        "tiled replay diverged across backends"
    );
}

#[test]
fn pcr_driver_agrees_across_backends() {
    // PCR's halo exchanges (sendrecv pairs at doubling distances) plus
    // the allreduce coordination rounds.
    let src = ClusteredToeplitz::standard(24, 2, 3);
    let batches = vec![random_rhs(24, 2, 4, 77)];
    for p in [2, 4, 8] {
        let cfg = DriverConfig::new(p)
            .with_model(ZERO)
            .with_threads_per_rank(1);
        let sim = pcr_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();
        let shm = pcr_solve_cfg_on::<ShmBackend, _>(&cfg, &src, &batches).unwrap();
        assert_eq!(
            bits_of_blockvecs(&sim.x),
            bits_of_blockvecs(&shm.x),
            "sim and shm PCR solutions diverged (p={p})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random shapes, world sizes, and batch counts: the driver solution
    /// is bitwise backend-independent.
    #[test]
    fn ard_solution_is_backend_independent(
        p in 1usize..9,
        m in 2usize..5,
        r in 1usize..5,
        salt in 0u64..1000,
        lean in proptest::bool::ANY,
    ) {
        let n = 8 * p.max(2); // a few rows per rank at every world size
        let src = ClusteredToeplitz::standard(n, m, salt);
        let batches = vec![random_rhs(n, m, r, salt ^ 0x5a5a)];
        let mut cfg = DriverConfig::new(p).with_model(ZERO).with_threads_per_rank(1);
        if lean {
            cfg = cfg.with_lean();
        }
        let sim = ard_solve_cfg_on::<SimBackend, _>(&cfg, &src, &batches).unwrap();
        let shm = ard_solve_cfg_on::<ShmBackend, _>(&cfg, &src, &batches).unwrap();
        prop_assert_eq!(
            bits_of_blockvecs(&sim.x),
            bits_of_blockvecs(&shm.x),
            "p={} m={} r={} salt={} lean={}", p, m, r, salt, lean
        );
    }
}
