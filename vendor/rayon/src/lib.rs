//! Offline stand-in for `rayon`.
//!
//! Provides the structured fork-join subset the kernels use — [`scope`],
//! [`Scope::spawn`], [`join`], [`current_num_threads`] — implemented over
//! `std::thread::scope`. There is no work-stealing pool: each `spawn`
//! becomes an OS thread that lives for the scope. Callers in this
//! workspace gate parallel paths behind an explicit thread budget and a
//! minimum problem size, so the per-spawn cost is amortized over large
//! kernels and never paid on small ones.

#![forbid(unsafe_code)]

/// Number of hardware threads available, mirroring
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fork-join scope handle passed to [`scope`] closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the scope
    /// joins every task before returning.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            body(&scope);
        });
    }
}

/// Runs `f` with a fork-join scope; returns once every spawned task has
/// finished, mirroring `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, and returns both results,
/// mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        (ra, b.join().expect("rayon::join: task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_tasks() {
        let mut parts = vec![0u64; 4];
        scope(|s| {
            for (i, slot) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *slot = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(parts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_works() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        });
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
