//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module's unbounded MPSC subset is provided, backed
//! by `std::sync::mpsc` (which, since Rust 1.67, *is* a port of
//! crossbeam-channel internally). Semantics the runtime relies on hold:
//! unbounded buffering, non-blocking sends, blocking `recv` that errors
//! once all senders are dropped.

#![forbid(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks. Errors if the receiver dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; errors once every sender dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive (`Ok` only if a value is already queued).
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            assert_eq!(sum, 4950);
        });
    }
}
