//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro (with the optional `#![proptest_config(..)]`
//! header), [`prop_assert!`]/[`prop_assert_eq!`], range/tuple/`prop_map`/
//! `collection::vec`/`bool::ANY` strategies, and `ProptestConfig::
//! with_cases`. Differences from upstream, deliberate for an offline
//! test-only shim:
//!
//! - **No shrinking.** A failing case reports its index and the values via
//!   the assertion message; the committed `proptest-regressions` files are
//!   kept as documentation of upstream-found shrinks, and each shrink that
//!   mattered is also pinned as a named unit test.
//! - **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name (stable across runs and platforms), overridable
//!   with the `PROPTEST_SEED` environment variable. `PROPTEST_CASES`
//!   overrides the case count the same way upstream honors it.

#![forbid(unsafe_code)]

/// Runner plumbing: config, RNG, and the error type test bodies return.
pub mod test_runner {
    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure returned by a property body (via `prop_assert!`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsification with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Deterministic RNG driving value generation (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test: seeded from a stable hash of the name,
        /// unless `PROPTEST_SEED` is set.
        pub fn for_test(name: &str) -> Self {
            if let Some(seed) = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                return Self { state: seed };
            }
            // FNV-1a: stable across runs, platforms, and toolchains.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Multiply-shift mapping of 64 uniform bits onto the
                    // span; bias < 2^-64 is immaterial for test data.
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );

    /// Strategy yielding exactly `value` (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` of fixed length, element-wise from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`, collected into a `Vec`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that checks the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.effective_cases() {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {} of {} failed:\n{}",
                        stringify!($name),
                        case,
                        config.effective_cases(),
                        e
                    );
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts inside a property body; on failure the current case is
/// reported (with the formatted message) instead of unwinding mid-body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality form of [`prop_assert!`], printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn tuple_and_map_compose(
            (a, b) in (0u64..10, 0u64..10),
            v in crate::collection::vec(0usize..5, 4),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len(), 4);
            let seen = if flag { 1u8 } else { 0 };
            prop_assert!(seen <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(n in 1usize..4) {
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn prop_map_applies_function() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("map");
        let s = (1usize..5).prop_map(|v| v * 100);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 100 == 0 && (100..500).contains(&v));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
