//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (locking never returns a `Result`; a poisoned lock is recovered by
//! taking the inner guard, matching `parking_lot`'s semantics of not
//! poisoning at all).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with the `parking_lot` API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
