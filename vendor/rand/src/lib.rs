//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of `rand` APIs the suite actually uses are implemented
//! here: a seedable [`rngs::StdRng`] and [`Rng::gen_range`] over float and
//! integer ranges. The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic per seed, which is all the suite requires (every use of
//! randomness here takes an explicit seed).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`; no
//! test or experiment in this workspace depends on the exact values, only
//! on determinism and range.

#![forbid(unsafe_code)]

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// xoshiro256++ PRNG, the suite's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name (the workspace enables the
    /// `small_rng` feature of upstream `rand`).
    pub type SmallRng = StdRng;

    impl StdRng {
        /// Next raw 64-bit output (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, per the
        // reference implementation.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

/// A type that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is < 2^-64,
                // immaterial for test-data generation.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling interface, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Uniform sample from a half-open `lo..hi` range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;
    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_respected() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respected_and_covers() {
        let mut r = rngs::StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_values_fill_the_range() {
        let mut r = rngs::StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
