//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the bench targets use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and both forms of
//! `criterion_group!` plus `criterion_main!` — as a plain wall-clock
//! harness. No statistics, plots, or baseline storage: each benchmark is
//! warmed up once, timed over `sample_size` batches, and the per-iteration
//! mean and minimum are printed. Good enough to compare kernels on one
//! host, which is all the suite's benches are for.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered `name/param`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id, rendered as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing summary for one benchmark: per-iteration mean and best sample.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean seconds per iteration across all samples.
    pub mean_s: f64,
    /// Fastest observed seconds per iteration.
    pub min_s: f64,
}

/// Measurement loop handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    last: Option<Sample>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via
    /// `std::hint::black_box` so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup pass (page-in, lazy init).
        std::hint::black_box(routine());
        // Choose an inner batch count so each sample is long enough for
        // the clock to resolve, without inflating slow benchmarks.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().as_secs_f64();
        let batch = if once > 0.0 {
            ((1e-4 / once).ceil() as usize).clamp(1, 10_000)
        } else {
            10_000
        };
        let samples = self.sample_size.max(2);
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64() / batch as f64;
            total += dt;
            min = min.min(dt);
        }
        self.last = Some(Sample {
            mean_s: total / samples as f64,
            min_s: min,
        });
    }
}

fn fmt_duration(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{seconds:.3} s")
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) -> Option<Sample> {
    let mut b = Bencher {
        sample_size,
        last: None,
    };
    f(&mut b);
    let mut line = format!("bench: {label:<40}");
    match b.last {
        Some(s) => {
            let _ = write!(
                line,
                " mean {:>12}  min {:>12}",
                fmt_duration(s.mean_s),
                fmt_duration(s.min_s)
            );
        }
        None => line.push_str(" (no measurement)"),
    }
    println!("{line}");
    b.last
}

/// Top-level harness object, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, in either the positional or
/// the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_sample() {
        let sample = run_one("smoke", 3, |b| b.iter(|| (0..100u64).sum::<u64>()));
        let s = sample.expect("iter() must record a sample");
        assert!(s.mean_s > 0.0 && s.min_s > 0.0 && s.min_s <= s.mean_s);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("gemm", 64).label, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 1), &1usize, |b, &n| b.iter(|| n + 1));
        g.bench_function("plain", |b| b.iter(|| 2 * 2));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }
}
