//! Cross-precision equivalence suite: the mixed path (`f32` factors +
//! `f64` iterative refinement) must agree with the pure-`f64` solver on
//! every well-conditioned system, on both the virtual-clock and the
//! shared-memory backends — and must *refuse* the half-width factors,
//! falling back to `f64`, on systems past the gray-zone gate.
//!
//! The scalar-kernel leg of these properties is exercised by the CI
//! matrix running this same suite under `BT_DENSE_SIMD=0`.

use block_tridiag_suite::ard::session::{ArdSession, ArdSessionOn};
use block_tridiag_suite::ard::state::RankSystem;
use block_tridiag_suite::ard::{
    MatrixKey, MixedRankFactors, Precision, ServiceConfig, ServiceOn, SolverService,
};
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, ClusteredToeplitz, Poisson2D};
use block_tridiag_suite::mpsim::{run_spmd, CostModel};
use block_tridiag_suite::shm::ShmBackend;
use proptest::prelude::*;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

#[test]
fn mixed_session_takes_f32_path_and_matches_f64() {
    let src = ClusteredToeplitz::standard(64, 4, 7);
    let t = materialize(&src);
    let classic = ArdSession::create(4, ZERO, &src).unwrap();
    let mixed = ArdSession::create_mixed(4, ZERO, &src).unwrap();
    assert_eq!(
        mixed.precision(),
        Precision::F32,
        "clustered system is well inside the gray-zone gate"
    );
    assert_eq!(classic.precision(), Precision::F64);
    // Half-width factors: the dominant M x M panel storage halves.
    assert!(
        mixed.factor_bytes() * 2 <= classic.factor_bytes() + classic.factor_bytes() / 4,
        "f32 factors should be about half the bytes: mixed={} classic={}",
        mixed.factor_bytes(),
        classic.factor_bytes()
    );
    for seed in 0..3 {
        let y = random_rhs(64, 4, 3, seed);
        let xf = classic.solve(&y).unwrap();
        let xm = mixed.solve(&y).unwrap();
        assert!(t.rel_residual(&xm, &y) < 1e-11, "seed {seed}");
        assert!(xm.rel_diff(&xf) < 1e-9, "seed {seed}: {}", xm.rel_diff(&xf));
    }
}

#[test]
fn gray_zone_poisson_falls_back_to_f64() {
    // N=32 Poisson is the pinned "silent degradation" case (Table III):
    // the boundary condition estimate is far above MIXED_COND_MAX, so
    // f32 factors cannot be refined reliably and the mixed setup must
    // keep the f64 factors instead.
    let src = Poisson2D::new(32, 6);
    let t = materialize(&src);
    let mixed = ArdSession::create_mixed(4, ZERO, &src).unwrap();
    assert_eq!(mixed.precision(), Precision::F64, "gate must trip");
    let y = random_rhs(32, 6, 2, 5);
    let (x, history) = mixed.solve_refined(&y, 6, 1e-13).unwrap();
    assert!(t.rel_residual(&x, &y) < 1e-11);
    assert!(!history.is_empty());
}

#[test]
fn fallback_sets_flag_and_records_flight_event() {
    let src = Poisson2D::new(32, 6);
    let out = run_spmd(4, ZERO, |comm| {
        let sys = RankSystem::from_source(&src, 4, comm.rank());
        let f = MixedRankFactors::setup(comm, &sys).unwrap();
        (f.precision(), f.fell_back())
    });
    for (rank, (precision, fell_back)) in out.results.into_iter().enumerate() {
        assert_eq!(precision, Precision::F64, "rank {rank}");
        assert!(fell_back, "rank {rank}: fallback flag must be set");
    }
    // Rank 0 put the decision on the always-on flight recorder.
    let events = block_tridiag_suite::obs::flight::snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.kind == "precision.fallback" && e.detail.contains("gray_zone")),
        "expected a precision.fallback flight event"
    );
}

#[test]
fn well_conditioned_does_not_set_fallback_flag() {
    let src = ClusteredToeplitz::standard(40, 3, 11);
    let out = run_spmd(4, ZERO, |comm| {
        let sys = RankSystem::from_source(&src, 4, comm.rank());
        let f = MixedRankFactors::setup(comm, &sys).unwrap();
        (f.precision(), f.fell_back())
    });
    for (precision, fell_back) in out.results {
        assert_eq!(precision, Precision::F32);
        assert!(!fell_back);
    }
}

#[test]
fn mixed_session_on_shm_backend() {
    // Same mixed path on real threads + wall clocks: the fallback
    // decision and the refined answer must be identical to the
    // virtual-clock backend's.
    let src = ClusteredToeplitz::standard(36, 3, 9);
    let t = materialize(&src);
    let mixed = ArdSessionOn::<ShmBackend>::create_mixed(2, ZERO, &src).unwrap();
    assert_eq!(mixed.precision(), Precision::F32);
    let y = random_rhs(36, 3, 2, 4);
    let x = mixed.solve(&y).unwrap();
    assert!(t.rel_residual(&x, &y) < 1e-11);

    let sim = ArdSession::create_mixed(2, ZERO, &src).unwrap();
    let x_sim = sim.solve(&y).unwrap();
    assert!(
        x.rel_diff(&x_sim) < 1e-12,
        "backend must not change the mixed answer"
    );
}

#[test]
fn service_caches_both_precisions_side_by_side() {
    let src = ClusteredToeplitz::standard(48, 4, 3);
    let t = materialize(&src);
    let service = SolverService::start(ServiceConfig::new(4, ZERO));
    let k64 = service.register(&src).unwrap();
    let k32 = service
        .register_with_precision(&src, Precision::F32)
        .unwrap();
    assert_ne!(k64, k32, "precisions must key separately");
    assert_eq!(
        k64,
        MatrixKey::fingerprint(&src),
        "f64 keys are byte-identical to the classic fingerprint"
    );
    assert_eq!(k32, MatrixKey::fingerprint_with(&src, Precision::F32));
    assert!(service.contains(k64) && service.contains(k32));
    for (key, label) in [(k64, "f64"), (k32, "f32")] {
        let y = random_rhs(48, 4, 2, 21);
        let resp = service.solve(key, &y).unwrap();
        assert!(t.rel_residual(&resp.x, &y) < 1e-11, "{label}");
    }
    // Re-registering either precision is a cache hit, not a refactor.
    assert_eq!(service.register(&src).unwrap(), k64);
    assert_eq!(
        service
            .register_with_precision(&src, Precision::F32)
            .unwrap(),
        k32
    );
}

#[test]
fn service_f32_registration_of_gray_zone_matrix_still_serves() {
    // The F32 registration of an ill-conditioned matrix silently holds
    // f64 fallback factors — the key stays the F32 key (the *request*
    // is what is cached), and answers stay full-accuracy.
    let src = Poisson2D::new(32, 6);
    let t = materialize(&src);
    let service = SolverService::start(ServiceConfig::new(4, ZERO));
    let key = service
        .register_with_precision(&src, Precision::F32)
        .unwrap();
    let y = random_rhs(32, 6, 2, 8);
    let resp = service.solve(key, &y).unwrap();
    assert!(t.rel_residual(&resp.x, &y) < 1e-11);
}

/// Arbitrary well-conditioned problem shape.
#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    m: usize,
    p: usize,
    r: usize,
    seed: u64,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (6usize..36, 1usize..6, 1usize..5, 1usize..4, 0u64..1000).prop_map(|(n, m, p, r, seed)| Shape {
        n,
        m,
        p: p.min(n),
        r,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mixed_agrees_with_f64_for_any_shape(shape in shape_strategy()) {
        let src = ClusteredToeplitz::standard(shape.n, shape.m, shape.seed);
        let t = materialize(&src);
        let classic = ArdSession::create(shape.p, ZERO, &src).unwrap();
        let mixed = ArdSession::create_mixed(shape.p, ZERO, &src).unwrap();
        let y = random_rhs(shape.n, shape.m, shape.r, shape.seed + 1);
        let xf = classic.solve(&y).unwrap();
        let xm = mixed.solve(&y).unwrap();
        let res = t.rel_residual(&xm, &y);
        prop_assert!(res < 1e-10, "shape {shape:?}: mixed residual {res}");
        let diff = xm.rel_diff(&xf);
        prop_assert!(diff < 1e-8, "shape {shape:?}: diff vs f64 {diff}");
    }

    #[test]
    fn mixed_shm_agrees_with_sim_for_any_shape(
        (n, m, seed) in (8usize..24, 1usize..5, 0u64..400),
    ) {
        let src = ClusteredToeplitz::standard(n, m, seed);
        let y = random_rhs(n, m, 2, seed + 3);
        let sim = ArdSession::create_mixed(2, ZERO, &src).unwrap();
        let shm = ArdSessionOn::<ShmBackend>::create_mixed(2, ZERO, &src).unwrap();
        prop_assert_eq!(sim.precision(), shm.precision());
        let a = sim.solve(&y).unwrap();
        let b = shm.solve(&y).unwrap();
        let diff = a.rel_diff(&b);
        prop_assert!(diff < 1e-12, "n={n} m={m} seed={seed}: {diff}");
    }

    #[test]
    fn mixed_service_answers_match_direct_session(
        (n, m, seed) in (8usize..28, 1usize..5, 0u64..300),
    ) {
        let src = ClusteredToeplitz::standard(n, m, seed);
        let t = materialize(&src);
        let service: ServiceOn<block_tridiag_suite::mpsim::SimBackend> =
            SolverService::start(ServiceConfig::new(2.min(n), ZERO));
        let key = service.register_with_precision(&src, Precision::F32).unwrap();
        let y = random_rhs(n, m, 2, seed + 7);
        let resp = service.solve(key, &y).unwrap();
        let res = t.rel_residual(&resp.x, &y);
        prop_assert!(res < 1e-10, "n={n} m={m} seed={seed}: residual {res}");
    }
}
