//! Property-based end-to-end tests: for arbitrary well-posed problem
//! shapes, the distributed solvers must produce small residuals, agree
//! with each other, and respect their structural invariants.

use block_tridiag_suite::ard::driver::{
    ard_solve_cfg, ard_solve_dist, rd_solve_dist, DriverConfig,
};
use block_tridiag_suite::ard::BoundaryMode;
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use block_tridiag_suite::mpsim::CostModel;
use proptest::prelude::*;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Arbitrary problem shape within the suite's supported envelope.
#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    m: usize,
    p: usize,
    r: usize,
    seed: u64,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (4usize..40, 1usize..6, 1usize..6, 1usize..5, 0u64..1000).prop_map(|(n, m, p, r, seed)| Shape {
        n,
        m,
        p: p.min(n),
        r,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ard_residual_small_for_any_shape(shape in shape_strategy()) {
        let src = ClusteredToeplitz::standard(shape.n, shape.m, shape.seed);
        let t = materialize(&src);
        let y = vec![random_rhs(shape.n, shape.m, shape.r, shape.seed + 1)];
        let out = ard_solve_dist(shape.p, ZERO, &src, &y).unwrap();
        let res = t.rel_residual(&out.x[0], &y[0]);
        prop_assert!(res < 1e-10, "shape {shape:?}: residual {res}");
        prop_assert!(out.stats.is_balanced());
        prop_assert!(out.x[0].all_finite());
    }

    #[test]
    fn rd_and_ard_agree_for_any_shape(shape in shape_strategy()) {
        let src = ClusteredToeplitz::standard(shape.n, shape.m, shape.seed);
        let y = vec![random_rhs(shape.n, shape.m, shape.r, shape.seed + 2); 2];
        let rd = rd_solve_dist(shape.p, ZERO, &src, &y).unwrap();
        let ard = ard_solve_dist(shape.p, ZERO, &src, &y).unwrap();
        for b in 0..2 {
            prop_assert!(ard.x[b].rel_diff(&rd.x[b]) < 1e-11, "shape {shape:?}");
        }
        // Over two batches ARD must not do more flops than RD.
        prop_assert!(ard.stats.total().flops <= rd.stats.total().flops, "shape {shape:?}");
    }

    #[test]
    fn windowed_agrees_with_exact_scan(shape in shape_strategy()) {
        let src = ClusteredToeplitz::standard(shape.n, shape.m, shape.seed);
        let y = vec![random_rhs(shape.n, shape.m, shape.r, shape.seed + 3)];
        let exact = ard_solve_dist(shape.p, ZERO, &src, &y).unwrap();
        // Window of the full prefix length is mathematically exact.
        let cfg = DriverConfig::new(shape.p)
            .with_model(ZERO)
            .with_boundary(BoundaryMode::Windowed(shape.n));
        let win = ard_solve_cfg(&cfg, &src, &y).unwrap();
        prop_assert!(win.x[0].rel_diff(&exact.x[0]) < 1e-10, "shape {shape:?}");
    }

    #[test]
    fn world_size_does_not_change_answer(
        (n, m, seed) in (6usize..30, 1usize..5, 0u64..500),
        p1 in 1usize..6,
        p2 in 1usize..6,
    ) {
        let p1 = p1.min(n);
        let p2 = p2.min(n);
        let src = ClusteredToeplitz::standard(n, m, seed);
        let y = vec![random_rhs(n, m, 2, seed + 9)];
        let a = ard_solve_dist(p1, ZERO, &src, &y).unwrap();
        let b = ard_solve_dist(p2, ZERO, &src, &y).unwrap();
        prop_assert!(a.x[0].rel_diff(&b.x[0]) < 1e-11, "p1={p1} p2={p2} n={n} m={m}");
    }

    #[test]
    fn linearity_of_the_solver(
        (n, m, seed) in (6usize..24, 1usize..4, 0u64..300),
        alpha in -3.0f64..3.0,
    ) {
        // Solving is linear: x(alpha * y) == alpha * x(y).
        let src = ClusteredToeplitz::standard(n, m, seed);
        let y = random_rhs(n, m, 2, seed + 4);
        let mut y_scaled = y.clone();
        for b in &mut y_scaled.blocks {
            b.scale(alpha);
        }
        let x = ard_solve_dist(2.min(n), ZERO, &src, std::slice::from_ref(&y)).unwrap();
        let xs = ard_solve_dist(2.min(n), ZERO, &src, std::slice::from_ref(&y_scaled)).unwrap();
        let mut expected = x.x[0].clone();
        for b in &mut expected.blocks {
            b.scale(alpha);
        }
        let scale = expected.fro_norm().max(1e-30);
        let mut diff = xs.x[0].clone();
        diff.sub_assign(&expected);
        prop_assert!(diff.fro_norm() / scale < 1e-9 || expected.fro_norm() < 1e-12);
    }
}
