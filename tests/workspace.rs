//! Allocation-regression tests for the workspace-pooled hot paths.
//!
//! The tentpole invariant of the memory model (DESIGN.md "Memory
//! model"): once warm, a replay solve performs **zero** heap
//! allocations. The rank workspace counts every pool miss in
//! `WorkspaceStats::checkouts`, so the invariant is pinned as a
//! counter delta — any new allocation on the warm path fails these
//! tests. The refactor from owned temporaries to pooled buffers must
//! also be *exact*: warm in-place solves are compared bitwise (`Mat`
//! equality is element-exact) against the allocating wrappers, which
//! reproduce the pre-workspace call pattern.

use block_tridiag_suite::ard::state::{ArdRankFactors, RankSystem};
use block_tridiag_suite::blocktri::gen::{rhs_panel, ClusteredToeplitz, Poisson2D};
use block_tridiag_suite::blocktri::BlockRowSource;
use block_tridiag_suite::dense::{CholFactors, LuFactors, Mat, Workspace};
use block_tridiag_suite::mpsim::{run_spmd, CostModel};

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// Core regression: after one warm-up batch, further replay solves
/// check nothing new out of the rank workspace (zero heap allocations
/// from pooled temporaries), and the in-place path is bitwise identical
/// to the allocating wrapper.
fn warm_replay_zero_checkouts(src: &(impl BlockRowSource + Sync), p: usize, r: usize) {
    let n = src.n();
    let m = src.m();
    let results = run_spmd(p, ZERO, |comm| {
        let sys = RankSystem::from_source(src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");

        let batch =
            |b: u64| -> Vec<Mat> { (sys.lo..sys.hi).map(|i| rhs_panel(m, r, b, i)).collect() };

        // Reference solutions via the allocating wrapper (the
        // pre-workspace call pattern: fresh output panels every call).
        let y0 = batch(0);
        let y1 = batch(1);
        let x0_ref = factors.solve_replay(comm, &y0);
        let x1_ref = factors.solve_replay(comm, &y1);

        // Warm-up done (two batches through every branch of the path).
        let warm = factors.workspace_stats();
        let mut out: Vec<Mat> = y0.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();

        // Several further batches, reusing `out`: zero new checkouts.
        factors.solve_replay_into(comm, &y0, &mut out);
        let x0_eq = out == x0_ref;
        factors.solve_replay_into(comm, &y1, &mut out);
        let x1_eq = out == x1_ref;
        for b in 2..5 {
            factors.solve_replay_into(comm, &batch(b), &mut out);
        }
        let after = factors.workspace_stats();
        (warm, after, x0_eq, x1_eq)
    });

    for (rank, (warm, after, x0_eq, x1_eq)) in results.results.into_iter().enumerate() {
        assert_eq!(
            after.checkouts,
            warm.checkouts,
            "rank {rank}: warm replay allocated ({} new checkouts) on N={n} M={m} R={r}",
            after.checkouts - warm.checkouts
        );
        assert!(
            after.reuses > warm.reuses,
            "rank {rank}: warm replay did not exercise the pool"
        );
        assert!(
            x0_eq,
            "rank {rank}: in-place replay differs from wrapper (batch 0)"
        );
        assert!(
            x1_eq,
            "rank {rank}: in-place replay differs from wrapper (batch 1)"
        );
    }
}

#[test]
fn warm_replay_is_allocation_free_general_system() {
    // General (unsymmetric) system: the rank factors LU-factor every
    // block diagonal.
    warm_replay_zero_checkouts(&ClusteredToeplitz::standard(48, 5, 2), 4, 3);
}

#[test]
fn warm_replay_is_allocation_free_spd_system() {
    // SPD (Poisson) system — the class a Cholesky direct solver handles;
    // the replay path must be allocation-free regardless of symmetry.
    warm_replay_zero_checkouts(&Poisson2D::new(32, 4), 4, 2);
}

#[test]
fn warm_replay_is_allocation_free_single_rank_and_wide_batch() {
    // Degenerate world (no scan rounds at P=1) and a wide batch.
    warm_replay_zero_checkouts(&ClusteredToeplitz::standard(16, 4, 1), 1, 8);
    warm_replay_zero_checkouts(&ClusteredToeplitz::standard(64, 3, 4), 8, 16);
}

/// The dense solver layer underneath: `solve_into` on workspace-pooled
/// scratch is bitwise identical to the allocating `solve`, for both LU
/// and Cholesky factorizations, and a warm take/put loop never touches
/// the allocator.
#[test]
fn dense_lu_and_cholesky_solve_into_bitwise_and_allocation_free() {
    let m = 12;
    let r = 5;
    let a = Mat::from_fn(m, m, |i, j| {
        let v = ((i * 31 + j * 17) as f64 * 0.37).sin();
        if i == j {
            v + 3.0 * m as f64
        } else {
            v
        }
    });
    // SPD version for Cholesky: A A^T + m I is symmetric positive definite.
    let mut spd = Mat::zeros(m, m);
    block_tridiag_suite::dense::gemm(
        1.0,
        &a,
        block_tridiag_suite::dense::Trans::No,
        &a,
        block_tridiag_suite::dense::Trans::Yes,
        0.0,
        &mut spd,
    );
    for k in 0..m {
        let v = spd.get(k, k);
        spd.set(k, k, v + m as f64);
    }
    let b = Mat::from_fn(m, r, |i, j| ((i * 7 + j * 13) as f64 * 0.23).cos());

    let lu = LuFactors::factor(&a).expect("lu");
    let chol = CholFactors::factor(&spd).expect("cholesky");
    let x_lu_ref = lu.solve(&b);
    let x_ch_ref = chol.solve(&b);

    let mut ws = Workspace::new();
    // Warm-up.
    let scratch = ws.take(m, r);
    ws.put(scratch);
    let warm = ws.stats();
    for _ in 0..10 {
        let mut scratch = ws.take(m, r);
        lu.solve_into(&b, &mut scratch);
        assert_eq!(scratch, x_lu_ref, "LU solve_into must match solve bitwise");
        chol.solve_into(&b, &mut scratch);
        assert_eq!(
            scratch, x_ch_ref,
            "Cholesky solve_into must match solve bitwise"
        );
        ws.put(scratch);
    }
    assert_eq!(
        ws.stats().checkouts,
        warm.checkouts,
        "warm dense solve loop must not allocate"
    );
    assert_eq!(ws.stats().reuses, warm.reuses + 10);
}
