//! Workspace-level observability round trips: a distributed ARD solve
//! with `BT_OBS` on must emit well-formed Chrome trace and metrics JSON
//! (checked with the in-tree parser/validator), attach counter deltas to
//! the outcome, and — crucially — produce bitwise-identical numerics to
//! the same solve with observability off.

use block_tridiag_suite::ard::driver::{ard_solve_cfg, DistOutcome, DriverConfig};
use block_tridiag_suite::blocktri::gen::{random_rhs, ClusteredToeplitz};
use block_tridiag_suite::mpsim::CostModel;
use block_tridiag_suite::obs as bt_obs;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

fn solve_once() -> DistOutcome {
    let src = ClusteredToeplitz::standard(48, 6, 3);
    let batches = vec![random_rhs(48, 6, 3, 101), random_rhs(48, 6, 3, 102)];
    let cfg = DriverConfig::new(4).with_model(ZERO);
    ard_solve_cfg(&cfg, &src, &batches).expect("ard solve")
}

/// The observability gate and the tracer/registry are process-global, so
/// this test owns the whole scenario in one body (off-solve, on-solve,
/// emission, validation) rather than racing several `#[test]`s.
#[test]
fn obs_round_trip_and_identical_numerics() {
    // ---- Off: baseline numerics, no counters attached. --------------
    bt_obs::set_enabled(false);
    let off = solve_once();
    assert!(off.obs_counters.is_none(), "counters attached with obs off");

    // ---- On: same solve, now instrumented. --------------------------
    bt_obs::set_enabled(true);
    bt_obs::reset_metrics();
    bt_obs::clear_trace();
    let on = solve_once();
    bt_obs::set_enabled(false);

    // Bitwise-identical numerics: instrumentation never touches math.
    assert_eq!(off.x.len(), on.x.len());
    for (a, b) in off.x.iter().zip(&on.x) {
        assert_eq!(a.blocks, b.blocks, "obs changed the solution bits");
    }

    // Counter deltas are attached and cover the instrumented kernels.
    let counters = on.obs_counters.as_ref().expect("counters missing");
    assert!(
        counters
            .get("bt_dense.lu.panel_solves")
            .copied()
            .unwrap_or(0)
            > 0,
        "no panel solves counted: {counters:?}"
    );
    assert!(
        counters.get("bt_dense.gemm.flops").copied().unwrap_or(0) > 0,
        "no gemm flops counted: {counters:?}"
    );

    // ---- Trace round trip. ------------------------------------------
    let trace = bt_obs::trace_json();
    let doc = bt_obs::json::parse(&trace).expect("trace JSON parses");
    let summary = bt_obs::json::validate_chrome_trace(&doc).expect("trace validates");
    assert!(summary.events > 0, "empty trace");
    // The validator enforces per-tid timestamp monotonicity; spot-check
    // the phases we expect from an ARD run made it in.
    for needle in ["phase1.exscan", "solve.forward", "solve.backward", "rank"] {
        assert!(trace.contains(needle), "trace lacks span '{needle}'");
    }

    // ---- Metrics round trip. ----------------------------------------
    let metrics = bt_obs::metrics_json();
    let mdoc = bt_obs::json::parse(&metrics).expect("metrics JSON parses");
    let msum = bt_obs::json::validate_metrics(&mdoc).expect("metrics validate");
    assert!(msum.counters > 0, "no counters in metrics export");

    // ---- File emission matches the in-memory strings. ---------------
    let dir = std::env::temp_dir().join("bt_obs_it");
    let tpath = dir.join("trace.json");
    let mpath = dir.join("metrics.json");
    bt_obs::write_trace_json(&tpath).expect("write trace");
    bt_obs::write_metrics_json(&mpath).expect("write metrics");
    for path in [&tpath, &mpath] {
        let text = std::fs::read_to_string(path).expect("read back");
        assert!(bt_obs::json::parse(&text).is_ok(), "unparsable {path:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
