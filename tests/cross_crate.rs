//! Workspace-level integration tests: every solver in the suite against
//! every generator, cross-checked against the dense LU reference.

use block_tridiag_suite::ard::driver::{
    ard_solve_cfg, ard_solve_cfg_on, ard_solve_dist, rd_solve_dist, DriverConfig,
};
use block_tridiag_suite::ard::BoundaryMode;
use block_tridiag_suite::blocktri::cyclic_reduction::cyclic_reduction_solve;
use block_tridiag_suite::blocktri::gen::{
    materialize, random_rhs, BlockToeplitz, ClusteredToeplitz, ConvectionDiffusion, Poisson2D,
    RandomDominant,
};
use block_tridiag_suite::blocktri::{thomas_solve, BlockRowSource, BlockVec};
use block_tridiag_suite::dense::{solve as dense_solve, Mat};
use block_tridiag_suite::mpsim::{CostModel, SimBackend};

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// All solvers on one system, all answers must agree with the dense LU
/// solution of the expanded matrix.
fn all_solvers_agree_with_dense(src: &(impl BlockRowSource + Sync), p: usize, r: usize, tol: f64) {
    let t = materialize(src);
    let y = random_rhs(src.n(), src.m(), r, 77);
    let x_dense = {
        let xd = dense_solve(&t.to_dense(), &y.to_dense()).expect("dense solve");
        BlockVec::from_dense(&xd, src.m())
    };

    let x_thomas = thomas_solve(&t, &y).expect("thomas");
    assert!(
        x_thomas.rel_diff(&x_dense) < tol,
        "thomas vs dense: {}",
        x_thomas.rel_diff(&x_dense)
    );

    let x_bcr = cyclic_reduction_solve(&t, &y).expect("bcr");
    assert!(
        x_bcr.rel_diff(&x_dense) < tol,
        "bcr vs dense: {}",
        x_bcr.rel_diff(&x_dense)
    );

    let rd = rd_solve_dist(p, ZERO, src, std::slice::from_ref(&y)).expect("rd");
    assert!(
        rd.x[0].rel_diff(&x_dense) < tol,
        "rd vs dense: {}",
        rd.x[0].rel_diff(&x_dense)
    );

    let ard = ard_solve_dist(p, ZERO, src, std::slice::from_ref(&y)).expect("ard");
    assert!(
        ard.x[0].rel_diff(&x_dense) < tol,
        "ard vs dense: {}",
        ard.x[0].rel_diff(&x_dense)
    );

    let cfg = DriverConfig::new(p)
        .with_model(ZERO)
        .with_boundary(BoundaryMode::Windowed(32));
    let win = ard_solve_cfg(&cfg, src, std::slice::from_ref(&y)).expect("windowed");
    assert!(
        win.x[0].rel_diff(&x_dense) < tol,
        "windowed vs dense: {}",
        win.x[0].rel_diff(&x_dense)
    );
}

#[test]
fn clustered_toeplitz_against_dense() {
    all_solvers_agree_with_dense(&ClusteredToeplitz::standard(24, 4, 1), 4, 3, 1e-10);
}

#[test]
fn poisson_against_dense() {
    all_solvers_agree_with_dense(&Poisson2D::new(20, 4), 4, 2, 1e-7);
}

#[test]
fn convection_diffusion_against_dense() {
    all_solvers_agree_with_dense(&ConvectionDiffusion::new(18, 3, 0.4), 3, 2, 1e-8);
}

#[test]
fn random_dominant_against_dense() {
    all_solvers_agree_with_dense(&RandomDominant::new(14, 3, 1.5, 8), 2, 2, 1e-8);
}

#[test]
fn toeplitz_dominant_against_dense() {
    all_solvers_agree_with_dense(&BlockToeplitz::dominant(16, 4, 4.0, 3), 4, 2, 1e-9);
}

#[test]
fn scalar_blocks_m1() {
    // M = 1 degenerates to an ordinary tridiagonal system.
    all_solvers_agree_with_dense(&ClusteredToeplitz::new(30, 1, 4.0, 0.5, 2), 5, 2, 1e-10);
}

#[test]
fn solution_independent_of_world_size() {
    // The parallel decomposition must not change the answer: compare all
    // world sizes against p = 1 (bitwise equality is not required —
    // different summation orders — but agreement to ~1e-12 is).
    let src = ClusteredToeplitz::standard(60, 5, 4);
    let y = vec![random_rhs(60, 5, 4, 3)];
    let base = ard_solve_dist(1, ZERO, &src, &y).unwrap();
    for p in [2, 3, 4, 5, 6, 10, 60] {
        let out = ard_solve_dist(p, ZERO, &src, &y).unwrap();
        let d = out.x[0].rel_diff(&base.x[0]);
        assert!(d < 1e-12, "p={p}: {d}");
    }
}

#[test]
fn modeled_time_decreases_with_ranks_until_latency_bound() {
    let src = ClusteredToeplitz::standard(256, 8, 6);
    let y = vec![random_rhs(256, 8, 8, 1)];
    let model = CostModel::hpc();
    // A virtual-clock scaling claim: pin to the simulator backend (on
    // shm these are wall clocks and 16 ranks oversubscribe small hosts).
    let cfg2 = DriverConfig::new(2)
        .with_model(model)
        .with_threads_per_rank(1);
    let cfg16 = DriverConfig::new(16)
        .with_model(model)
        .with_threads_per_rank(1);
    let t2 = ard_solve_cfg_on::<SimBackend, _>(&cfg2, &src, &y)
        .unwrap()
        .timings
        .total_modeled();
    let t16 = ard_solve_cfg_on::<SimBackend, _>(&cfg16, &src, &y)
        .unwrap()
        .timings
        .total_modeled();
    assert!(
        t16 < t2,
        "modeled time must shrink 2 -> 16 ranks ({t2} vs {t16})"
    );
}

#[test]
fn counters_scale_with_log_p() {
    // Per-rank scan traffic must grow like log P, not P.
    let src = ClusteredToeplitz::standard(512, 8, 2);
    let y = vec![random_rhs(512, 8, 4, 4)];
    let bytes_per_rank = |p: usize| {
        let out = ard_solve_dist(p, ZERO, &src, &y).unwrap();
        out.stats.max_bytes_sent()
    };
    let b4 = bytes_per_rank(4);
    let b64 = bytes_per_rank(64);
    // log2(64)/log2(4) = 3: allow generous slack but far below 16x.
    assert!(b64 < 5 * b4, "per-rank bytes grew too fast: {b4} -> {b64}");
}

#[test]
fn rhs_panel_distribution_matches_blockvec() {
    // The per-row deterministic RHS generation used by embedded SPMD
    // programs must agree with the assembled BlockVec.
    use block_tridiag_suite::blocktri::gen::rhs_panel;
    let bv = random_rhs(10, 3, 4, 9);
    for i in 0..10 {
        assert_eq!(bv.blocks[i], rhs_panel(3, 4, 9, i));
    }
}

#[test]
fn dense_expansion_roundtrip() {
    let src = ClusteredToeplitz::standard(6, 3, 5);
    let t = materialize(&src);
    let dense = t.to_dense();
    assert_eq!(dense.rows(), 18);
    // Block structure: C_0 sits in the adjacent block column, and
    // everything beyond the tridiagonal band is zero.
    assert!(
        dense.block(0, 3, 3, 3).max_abs() > 0.0,
        "C_0 must be populated"
    );
    assert_eq!(
        dense.block(0, 6, 3, 3).max_abs(),
        0.0,
        "outside band must be zero"
    );
    assert_eq!(
        dense.block(9, 0, 3, 3).max_abs(),
        0.0,
        "outside band must be zero"
    );
}

#[test]
fn stats_balanced_across_all_drivers() {
    let src = ClusteredToeplitz::standard(32, 3, 7);
    let y = vec![random_rhs(32, 3, 2, 2); 2];
    for p in [1, 3, 8] {
        let rd = rd_solve_dist(p, ZERO, &src, &y).unwrap();
        let ard = ard_solve_dist(p, ZERO, &src, &y).unwrap();
        assert!(rd.stats.is_balanced(), "p={p} rd");
        assert!(ard.stats.is_balanced(), "p={p} ard");
    }
}

#[test]
fn wide_panel_solve_matches_column_by_column() {
    let src = ClusteredToeplitz::standard(40, 4, 8);
    let y = random_rhs(40, 4, 6, 5);
    let panel = ard_solve_dist(4, ZERO, &src, std::slice::from_ref(&y)).unwrap();
    for j in 0..6 {
        let yj = y.column(j);
        let xj = ard_solve_dist(4, ZERO, &src, std::slice::from_ref(&yj)).unwrap();
        let d = panel.x[0].column(j).rel_diff(&xj.x[0]);
        assert!(d < 1e-13, "column {j}: {d}");
    }
}

#[test]
fn umbrella_reexports_work() {
    // The umbrella crate exposes all members under stable names.
    let _m: Mat = block_tridiag_suite::dense::Mat::identity(2);
    let _c = block_tridiag_suite::mpsim::CostModel::default();
    let _g = block_tridiag_suite::blocktri::gen::Poisson2D::new(2, 2);
    let _b = block_tridiag_suite::ard::BoundaryMode::ExactScan;
}
