//! End-to-end serving-path telemetry: one service run under `BT_OBS=1`
//! must produce a single merged Chrome trace in which a sampled
//! request's spans — queue wait, batch dispatch, the session replay
//! solve, and the per-rank scan rounds — all carry that request's id;
//! the live exporter must serve valid Prometheus text and a JSON
//! snapshot *during* the run; and a forced solve panic must leave a
//! flight-recorder dump containing the doomed request's events.

use std::io::{Read, Write};
use std::time::Duration;

use block_tridiag_suite::ard::{ServiceConfig, ServiceError, SolverService};
use block_tridiag_suite::blocktri::gen::{materialize, random_rhs, ClusteredToeplitz};
use block_tridiag_suite::mpsim::CostModel;
use block_tridiag_suite::obs as bt_obs;

const N: usize = 24;
const M: usize = 3;
const P: usize = 4;

const ZERO: CostModel = CostModel {
    latency_s: 0.0,
    per_byte_s: 0.0,
    flop_rate: f64::INFINITY,
    threads_per_rank: 1,
};

/// One HTTP/1.0 GET against the live exporter; returns (head, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect exporter");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read response");
    let (head, body) = resp.split_once("\r\n\r\n").expect("head/body split");
    (head.to_string(), body.to_string())
}

/// Does this trace event's `args` attribute it to `req` — either as a
/// single-request context (`"req": id`) or as a member of a batch
/// context (`"reqs": [...]`)?
fn event_serves(ev: &bt_obs::json::Json, req: u64) -> bool {
    let Some(args) = ev.get("args") else {
        return false;
    };
    #[allow(clippy::float_cmp)] // ids are small integers, exact in f64
    let is_req = |v: &bt_obs::json::Json| v.as_f64() == Some(req as f64);
    if args.get("req").is_some_and(&is_req) {
        return true;
    }
    args.get("reqs")
        .and_then(bt_obs::json::Json::as_arr)
        .is_some_and(|ids| ids.iter().any(is_req))
}

/// The observability gate, tracer, flight ring and latency registry are
/// process-global; this test owns the whole scenario in one body.
#[test]
fn serving_path_telemetry_round_trip() {
    bt_obs::set_enabled(true);
    bt_obs::clear_trace();
    bt_obs::flight::clear();
    bt_obs::hdr::reset_latencies();

    let dump_dir = std::env::temp_dir().join("bt_flight_it");
    let _ = std::fs::remove_dir_all(&dump_dir);

    let svc = SolverService::start(ServiceConfig {
        max_batch: 4,
        max_delay: Duration::from_millis(5),
        flight_dump_dir: Some(dump_dir.clone()),
        ..ServiceConfig::new(P, ZERO)
    });
    let a = ClusteredToeplitz::standard(N, M, 7);
    let key = svc.register(&a).expect("register");
    let t = materialize(&a);

    // Live exporter up for the duration of the run.
    let exporter = bt_obs::exporter::serve("127.0.0.1:0").expect("bind exporter");
    let addr = exporter.local_addr();

    // ---- A width-4 coalesced batch; sample the first request. -------
    let ys: Vec<_> = (0..4u64).map(|s| random_rhs(N, M, 1, 50 + s)).collect();
    let tickets: Vec<_> = ys
        .iter()
        .map(|y| svc.submit(key, y).expect("submit"))
        .collect();
    let sampled_req = tickets[0].request_id();
    assert!(sampled_req >= 1, "request ids start at 1");
    let mut sampled_batch = 0;
    for (ticket, y) in tickets.into_iter().zip(&ys) {
        let req = ticket.request_id();
        let resp = ticket.wait().expect("batched solve");
        assert_eq!(resp.request_id, req, "response carries its request id");
        assert_eq!(resp.batch_width, 4, "all four requests rode one batch");
        if req == sampled_req {
            sampled_batch = resp.batch_id;
        }
        assert!(t.rel_residual(&resp.x, y) < 1e-10);
    }
    assert!(sampled_batch >= 1, "batch ids start at 1");

    // ---- Live scrape while the service is still up. -----------------
    let (head, body) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
    let prom = bt_obs::exporter::validate_prometheus_text(&body).expect("prometheus validates");
    assert!(prom.samples > 0 && prom.types > 0);
    for stage in [
        "bt_service_queue_wait_ns",
        "bt_service_solve_ns",
        "bt_service_request_total_ns",
    ] {
        assert!(body.contains(stage), "scrape lacks {stage}:\n{body}");
    }

    let (head, body) = get(addr, "/json");
    assert!(head.starts_with("HTTP/1.0 200"));
    let snap = bt_obs::json::parse(&body).expect("snapshot parses");
    bt_obs::json::validate_snapshot(&snap).expect("snapshot validates");

    // The always-on recorders saw every request regardless of the gate.
    let lat = bt_obs::hdr::latencies_snapshot();
    let queue = lat
        .iter()
        .find(|(name, _)| name == "bt_service.queue_wait_ns")
        .map(|(_, s)| s)
        .expect("queue-wait recorder registered");
    assert!(queue.count >= 4, "queue-wait count {}", queue.count);

    // ---- One merged Chrome trace, spans tagged with the request. ----
    bt_obs::set_enabled(false);
    let trace = bt_obs::trace_json();
    let doc = bt_obs::json::parse(&trace).expect("trace parses");
    bt_obs::json::validate_chrome_trace(&doc).expect("trace validates");
    let events = doc
        .get("traceEvents")
        .and_then(bt_obs::json::Json::as_arr)
        .expect("traceEvents array");
    for span in [
        "queue.wait",
        "batch.dispatch",
        "replay.solve",
        "affine_replay.round",
    ] {
        assert!(
            events.iter().any(|ev| {
                ev.get("name").and_then(bt_obs::json::Json::as_str) == Some(span)
                    && event_serves(ev, sampled_req)
            }),
            "no '{span}' span attributed to request {sampled_req}"
        );
    }

    // ---- Forced solve panic leaves a flight dump. -------------------
    assert!(svc.lose_factors_for_test(key));
    let y = random_rhs(N, M, 1, 99);
    let ticket = svc.submit(key, &y).expect("submit doomed request");
    let failed_req = ticket.request_id();
    match ticket.wait() {
        Err(ServiceError::SolveFailed(msg)) => assert!(msg.contains("lost"), "got: {msg}"),
        other => panic!(
            "expected SolveFailed, got {other:?}",
            other = other.map(|_| ())
        ),
    }
    let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
        .expect("dump dir created")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(dumps.len(), 1, "one dump per panicked batch: {dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).expect("read dump");
    let flight = bt_obs::json::parse(&text).expect("dump parses");
    let summary = bt_obs::json::validate_flight(&flight).expect("dump validates");
    assert!(summary.events > 0);
    let fevents = flight
        .get("events")
        .and_then(bt_obs::json::Json::as_arr)
        .expect("events array");
    #[allow(clippy::float_cmp)] // ids are small integers, exact in f64
    let has = |kind: &str, req: u64| {
        fevents.iter().any(|ev| {
            ev.get("kind").and_then(bt_obs::json::Json::as_str) == Some(kind)
                && ev.get("req").and_then(bt_obs::json::Json::as_f64) == Some(req as f64)
        })
    };
    assert!(has("submit", failed_req), "dump lacks the doomed submit");
    assert!(has("solve_failed", failed_req), "dump lacks the failure");
    assert!(
        fevents
            .iter()
            .any(|ev| ev.get("kind").and_then(bt_obs::json::Json::as_str) == Some("solve_panic")),
        "dump lacks the panic event"
    );

    drop(svc);
    drop(exporter);
    let _ = std::fs::remove_dir_all(&dump_dir);
}
