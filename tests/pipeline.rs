//! Pipeline-correctness tests for the RHS-tiled replay solve.
//!
//! The software pipeline (DESIGN.md §6.9) reorders *communication* —
//! panels travel in column tiles behind nonblocking receives — but must
//! never reorder *arithmetic*: `solve_replay_into_tiled` is required to
//! be bitwise identical to `solve_replay_into` for every tile size,
//! including degenerate ones (`tile = 1`, `tile > R`, `R % tile != 0`).
//! `Mat` equality is element-exact, so `assert_eq!` pins that.
//!
//! A two-rank crossed-isend test guards the nonblocking layer's
//! deadlock-freedom: both ranks post their sends before either waits.

use block_tridiag_suite::ard::state::{ArdRankFactors, RankSystem};
use block_tridiag_suite::blocktri::gen::{rhs_panel, ClusteredToeplitz};
use block_tridiag_suite::blocktri::BlockRowSource;
use block_tridiag_suite::dense::Mat;
use block_tridiag_suite::mpsim::{run_spmd, CommBackend, CostModel};
use proptest::prelude::*;

/// Solves one batch with the given tile width on every rank and returns
/// the per-rank solution panels. A nonzero cost model so the virtual
/// clock actually gates `avail_at` and the nonblocking receive paths
/// (post / wait / overlap accounting) are exercised for real.
fn solve_tiled(src: &ClusteredToeplitz, p: usize, r: usize, tile: Option<usize>) -> Vec<Vec<Mat>> {
    let m = src.m();
    let out = run_spmd(p, CostModel::cluster(), |comm| {
        let sys = RankSystem::from_source(src, p, comm.rank());
        let factors = ArdRankFactors::setup(comm, &sys, true).expect("setup");
        let y: Vec<Mat> = (sys.lo..sys.hi).map(|i| rhs_panel(m, r, 7, i)).collect();
        let mut x: Vec<Mat> = y.iter().map(|p| Mat::zeros(p.rows(), p.cols())).collect();
        match tile {
            Some(t) => factors.solve_replay_into_tiled(comm, &y, &mut x, t),
            None => factors.solve_replay_into(comm, &y, &mut x),
        }
        x
    });
    out.results
}

/// The tile widths every shape is checked against: fully serialized
/// columns, a non-divisor, the exact width (unpiped) and an
/// over-wide tile (single-tile pipeline, `tile > R`).
fn tile_sweep(r: usize) -> Vec<usize> {
    let mut tiles = vec![1, 2, 3, r.max(1), r + 5];
    tiles.retain(|&t| t >= 1);
    tiles.dedup();
    tiles
}

#[test]
fn tiled_replay_bitwise_identical_across_tile_sweep() {
    let (n, m, p, r) = (24, 3, 5, 7);
    let src = ClusteredToeplitz::standard(n, m, 11);
    let base = solve_tiled(&src, p, r, None);
    for tile in tile_sweep(r) {
        let tiled = solve_tiled(&src, p, r, Some(tile));
        assert_eq!(tiled, base, "tile={tile} diverged from solve_replay_into");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary shapes and arbitrary tile widths — degenerate ones
    /// included — the pipelined replay reproduces the unpiped panels
    /// bit for bit.
    #[test]
    fn tiled_replay_bitwise_identical_for_any_shape(
        (n, m, p, r, tile, seed) in (4usize..28, 1usize..5, 1usize..6, 1usize..9, 1usize..12, 0u64..500)
    ) {
        let p = p.min(n);
        let src = ClusteredToeplitz::standard(n, m, seed);
        let base = solve_tiled(&src, p, r, None);
        let tiled = solve_tiled(&src, p, r, Some(tile));
        prop_assert_eq!(tiled, base, "n={} m={} p={} r={} tile={}", n, m, p, r, tile);
    }
}

/// Deadlock regression for the nonblocking layer: two ranks post
/// *crossed* isends (each sends to the other before either receives).
/// Eager buffered sends mean neither blocks; the posted receives then
/// complete in either order. A blocking sendrecv ordered naively would
/// hang here — this pins that the isend/irecv path cannot.
#[test]
fn crossed_isends_between_two_ranks_complete() {
    let m = 4;
    let out = run_spmd(2, CostModel::cluster(), |comm| {
        let me = comm.rank();
        let peer = 1 - me;
        let mine = Mat::from_fn(m, m, |i, j| (me * 100 + i * m + j) as f64);
        let send = comm.isend_panel(peer, 3, mine.as_ref());
        let recv = comm.irecv_panel_into(peer, 3, Mat::<f64>::zeros(m, m));
        comm.send_wait(send);
        let got = comm.recv_wait(recv);
        let want = Mat::from_fn(m, m, |i, j| (peer * 100 + i * m + j) as f64);
        assert_eq!(got, want);
        comm.stats().nb_recvs
    });
    assert_eq!(out.results, vec![1, 1]);
}
