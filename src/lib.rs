//! Umbrella crate for the block tridiagonal suite workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one import root. See the individual crates for documentation:
//! [`bt_dense`], [`bt_comm`], [`bt_mpsim`], [`bt_shm`], [`bt_blocktri`],
//! [`bt_ard`], [`bt_obs`].

pub use bt_ard as ard;
pub use bt_blocktri as blocktri;
pub use bt_comm as comm;
pub use bt_dense as dense;
pub use bt_mpsim as mpsim;
pub use bt_obs as obs;
pub use bt_shm as shm;
